#include "net/views.hpp"

#include <cstring>
#include <string>

#include "net/frame.hpp"
#include "util/varint.hpp"

namespace graphene::net::views {
namespace {

// Structural bounds the copying deserializers keep file-local. Each value is
// pinned to its owner by tests/perf/test_zero_copy.cpp (a drift here shows up
// as an accept/reject divergence, which the differential fuzzer also holds).
constexpr std::uint32_t kBloomMaxHashCount = 64;   // bloom_filter.cpp
constexpr std::uint32_t kIbltMinHashCount = 2;     // iblt.cpp / kv_iblt.cpp
constexpr std::uint32_t kIbltMaxHashCount = 16;    // iblt.cpp / kv_iblt.cpp
constexpr std::size_t kCuckooBucketSlots = 4;      // cuckoo_filter.cpp
constexpr std::size_t kTxFixedOverhead = 36;       // messages.cpp: id + size
constexpr std::uint8_t kMaxErrorCode = 4;          // daemon::ErrorCode::kShutdown

/// Bytes consumed from `r` since `before = r.tail()` was taken.
util::ByteView consumed(util::ByteView before, const util::ByteReader& r) {
  return before.first(before.size() - r.tail().size());
}

[[noreturn]] void fail(const char* what) { throw util::DeserializeError(what); }

/// Canonical presence/bool flag: only 0 and 1 are wire-legal.
bool read_flag(util::ByteReader& r, const char* what) {
  const std::uint8_t flag = r.u8();
  if (flag > 1) fail(what);
  return flag == 1;
}

double read_fpr(util::ByteReader& r, const char* what) {
  const std::uint64_t bits = r.u64();
  double fpr = 0.0;
  std::memcpy(&fpr, &bits, sizeof(fpr));
  if (!(fpr > 0.0 && fpr <= 1.0)) fail(what);
  return fpr;
}

/// Walks one full-transaction record (32-byte id | u32 claimed size | padded
/// body) without materializing it — the borrow twin of read_full_tx().
void skip_full_tx(util::ByteReader& r) {
  (void)r.raw_view(32);
  const std::uint32_t size = r.u32();
  if (size > util::wire::kMaxTxWireSize) {
    fail("full tx: claimed size exceeds kMaxTxWireSize");
  }
  const std::size_t body = size > kTxFixedOverhead ? size - kTxFixedOverhead : 0;
  (void)r.raw_view(body);
}

/// Borrows `count` full-tx records and returns their concatenated extent.
util::ByteView read_full_tx_records(util::ByteReader& r, std::uint64_t count,
                                    const char* what) {
  if (count > r.remaining() / kTxFixedOverhead) fail(what);
  const util::ByteView before = r.tail();
  for (std::uint64_t i = 0; i < count; ++i) skip_full_tx(r);
  return consumed(before, r);
}

}  // namespace

// --- leaf container views ----------------------------------------------------

BloomFilterView BloomFilterView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  BloomFilterView v;
  v.n_bits = util::read_varint_bounded(r, util::wire::kMaxBloomBits, "BloomFilter bits");
  v.k_byte = r.u8();
  if ((v.k_byte & 0xc0) == 0xc0 && (v.k_byte & 0x3f) != 0) {
    if (v.n_bits == 0 || v.n_bits % bloom::BloomFilter::kBlockBits != 0) {
      fail("BloomFilter: blocked layout requires whole blocks");
    }
  } else {
    const std::uint32_t k = v.k_byte & 0x7f;
    if (k == 0 || k > kBloomMaxHashCount) fail("BloomFilter: invalid hash count");
  }
  v.seed = r.u64();
  const std::size_t payload = static_cast<std::size_t>((v.n_bits + 7) / 8);
  if (payload > r.remaining()) fail("BloomFilter: bit count exceeds buffer");
  v.bits = r.raw_view(payload);
  v.span = consumed(before, r);
  return v;
}

bloom::BloomFilter BloomFilterView::materialize() const {
  util::ByteReader r(span);
  return bloom::BloomFilter::deserialize(r);
}

GolombSetView GolombSetView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  GolombSetView v;
  v.n = util::read_varint_bounded(r, util::wire::kMaxGolombItems, "GolombSet items");
  v.rice_param = r.u8();
  if (v.rice_param < 1 || v.rice_param > 40) fail("GolombSet: invalid rice parameter");
  v.seed = r.u64();
  v.bit_count = util::read_varint_bounded(r, util::wire::kMaxGolombBits, "GolombSet bits");
  if (v.n > v.bit_count / (v.rice_param + 1u)) {
    fail("GolombSet: item count exceeds coded stream");
  }
  const std::size_t payload = static_cast<std::size_t>((v.bit_count + 7) / 8);
  if (payload > r.remaining()) fail("GolombSet: bit count exceeds buffer");
  v.coded = r.raw_view(payload);
  v.span = consumed(before, r);
  return v;
}

bloom::GolombSet GolombSetView::materialize() const {
  util::ByteReader r(span);
  return bloom::GolombSet::deserialize(r);
}

CuckooFilterView CuckooFilterView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  CuckooFilterView v;
  v.buckets =
      util::read_varint_bounded(r, util::wire::kMaxCuckooBuckets, "CuckooFilter buckets");
  v.fp_bits = r.u8();
  if (v.buckets != 0 && (v.buckets & (v.buckets - 1)) != 0) {
    fail("CuckooFilter: bucket count not a power of two");
  }
  if (v.fp_bits < 4 || v.fp_bits > 16) fail("CuckooFilter: invalid fingerprint width");
  if (v.buckets > r.remaining()) fail("CuckooFilter: bucket count exceeds buffer");
  v.seed = r.u64();
  const std::uint64_t stash_count =
      util::read_varint_bounded(r, util::wire::kMaxWireCollection, "CuckooFilter stash");
  if (stash_count > r.remaining() / 2) fail("CuckooFilter: stash exceeds buffer");
  v.stash = r.raw_view(static_cast<std::size_t>(stash_count) * 2);
  // The copying path streams the table bit-by-bit; its byte consumption is
  // exactly ceil(buckets * slots * fp_bits / 8).
  const std::uint64_t payload_bits = v.buckets * kCuckooBucketSlots * v.fp_bits;
  if ((payload_bits + 7) / 8 > r.remaining()) {
    fail("CuckooFilter: bucket count exceeds buffer");
  }
  v.table = r.raw_view(static_cast<std::size_t>((payload_bits + 7) / 8));
  v.span = consumed(before, r);
  return v;
}

bloom::CuckooFilter CuckooFilterView::materialize() const {
  util::ByteReader r(span);
  return bloom::CuckooFilter::deserialize(r);
}

IbltView IbltView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  IbltView v;
  v.cell_count = util::read_varint_bounded(r, util::wire::kMaxIbltCells, "Iblt cells");
  v.k = r.u8();
  if (v.k < kIbltMinHashCount || v.k > kIbltMaxHashCount) {
    fail("Iblt: invalid hash count");
  }
  if (v.cell_count == 0 || v.cell_count % v.k != 0) {
    fail("Iblt: cell count not a positive multiple of hash count");
  }
  if (r.remaining() < 8 ||
      v.cell_count > (r.remaining() - 8) / iblt::Iblt::kCellBytes) {
    fail("Iblt: cell count exceeds buffer");
  }
  v.seed = r.u64();
  v.cells = r.raw_view(static_cast<std::size_t>(v.cell_count) * iblt::Iblt::kCellBytes);
  v.span = consumed(before, r);
  return v;
}

iblt::Iblt IbltView::materialize() const {
  util::ByteReader r(span);
  return iblt::Iblt::deserialize(r);
}

KvIbltView KvIbltView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  KvIbltView v;
  v.cell_count = util::read_varint_bounded(r, util::wire::kMaxIbltCells, "KvIblt cells");
  v.k = r.u8();
  if (v.k < kIbltMinHashCount || v.k > kIbltMaxHashCount) {
    fail("KvIblt: invalid hash count");
  }
  if (v.cell_count == 0 || v.cell_count % v.k != 0) {
    fail("KvIblt: cell count not a positive multiple of hash count");
  }
  if (r.remaining() < 8 ||
      v.cell_count > (r.remaining() - 8) / iblt::KvIblt::kCellBytes) {
    fail("KvIblt: cell count exceeds buffer");
  }
  v.seed = r.u64();
  v.cells =
      r.raw_view(static_cast<std::size_t>(v.cell_count) * iblt::KvIblt::kCellBytes);
  v.span = consumed(before, r);
  return v;
}

iblt::KvIblt KvIbltView::materialize() const {
  util::ByteReader r(span);
  return iblt::KvIblt::deserialize(r);
}

StrataEstimatorView StrataEstimatorView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  StrataEstimatorView v;
  v.stratum_count = r.u8();
  if (v.stratum_count == 0 || v.stratum_count > 64) {
    fail("StrataEstimator: invalid stratum count");
  }
  const util::ByteView strata_start = r.tail();
  for (std::uint8_t s = 0; s < v.stratum_count; ++s) (void)IbltView::parse(r);
  v.strata = consumed(strata_start, r);
  v.span = consumed(before, r);
  return v;
}

iblt::StrataEstimator StrataEstimatorView::materialize() const {
  util::ByteReader r(span);
  return iblt::StrataEstimator::deserialize(r);
}

// --- core protocol message views ---------------------------------------------

GrapheneBlockMsgView GrapheneBlockMsgView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  GrapheneBlockMsgView v;
  v.header = chain::BlockHeader::deserialize(r);
  v.n = util::read_varint_bounded(r, util::wire::kMaxBlockTxCount, "GrapheneBlockMsg n");
  v.shortid_salt = r.u64();
  v.filter_s = BloomFilterView::parse(r);
  v.iblt_i = IbltView::parse(r);
  v.span = consumed(before, r);
  return v;
}

core::GrapheneBlockMsg GrapheneBlockMsgView::materialize() const {
  util::ByteReader r(span);
  return core::GrapheneBlockMsg::deserialize(r);
}

GrapheneRequestMsgView GrapheneRequestMsgView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  GrapheneRequestMsgView v;
  v.z = util::read_varint_bounded(r, util::wire::kMaxWireCollection,
                                  "GrapheneRequestMsg z");
  v.b = util::read_varint_bounded(r, util::wire::kMaxSizingParam, "GrapheneRequestMsg b");
  v.y_star = util::read_varint_bounded(r, util::wire::kMaxSizingParam,
                                       "GrapheneRequestMsg y_star");
  v.fpr_r = read_fpr(r, "GrapheneRequestMsg: fpr not in (0, 1]");
  v.reversed = read_flag(r, "GrapheneRequestMsg reversed: invalid presence flag");
  v.filter_r = BloomFilterView::parse(r);
  v.span = consumed(before, r);
  return v;
}

core::GrapheneRequestMsg GrapheneRequestMsgView::materialize() const {
  util::ByteReader r(span);
  return core::GrapheneRequestMsg::deserialize(r);
}

GrapheneResponseMsgView GrapheneResponseMsgView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  GrapheneResponseMsgView v;
  v.missing_count = util::read_varint_bounded(r, util::wire::kMaxWireCollection,
                                              "GrapheneResponseMsg count");
  v.missing = read_full_tx_records(
      r, v.missing_count, "GrapheneResponseMsg: transaction count exceeds buffer");
  v.iblt_j = IbltView::parse(r);
  v.has_filter_f = read_flag(r, "GrapheneResponseMsg filter_f: invalid presence flag");
  if (v.has_filter_f) v.filter_f = BloomFilterView::parse(r);
  v.span = consumed(before, r);
  return v;
}

core::GrapheneResponseMsg GrapheneResponseMsgView::materialize() const {
  util::ByteReader r(span);
  return core::GrapheneResponseMsg::deserialize(r);
}

RepairRequestMsgView RepairRequestMsgView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  RepairRequestMsgView v;
  v.id_count = util::read_varint_bounded(r, util::wire::kMaxWireCollection,
                                         "RepairRequestMsg count");
  if (v.id_count > r.remaining() / 8) {
    fail("RepairRequestMsg: id count exceeds buffer");
  }
  v.short_ids = r.raw_view(static_cast<std::size_t>(v.id_count) * 8);
  v.span = consumed(before, r);
  return v;
}

core::RepairRequestMsg RepairRequestMsgView::materialize() const {
  util::ByteReader r(span);
  return core::RepairRequestMsg::deserialize(r);
}

RepairResponseMsgView RepairResponseMsgView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  RepairResponseMsgView v;
  v.tx_count = util::read_varint_bounded(r, util::wire::kMaxWireCollection,
                                         "RepairResponseMsg count");
  v.txns = read_full_tx_records(
      r, v.tx_count, "RepairResponseMsg: transaction count exceeds buffer");
  v.span = consumed(before, r);
  return v;
}

core::RepairResponseMsg RepairResponseMsgView::materialize() const {
  util::ByteReader r(span);
  return core::RepairResponseMsg::deserialize(r);
}

// --- reconcile backend message views -----------------------------------------

OfferView OfferView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  OfferView v;
  v.count = util::read_varint_bounded(r, util::wire::kMaxWireCollection,
                                      "reconcile::Offer count");
  v.salt = r.u64();
  v.set_checksum = r.u64();
  v.filter = BloomFilterView::parse(r);
  v.correction = IbltView::parse(r);
  v.span = consumed(before, r);
  return v;
}

reconcile::Offer OfferView::materialize() const {
  util::ByteReader r(span);
  return reconcile::Offer::deserialize(r);
}

RequestView RequestView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  RequestView v;
  v.candidate_count = util::read_varint_bounded(r, util::wire::kMaxWireCollection,
                                                "reconcile::Request candidates");
  v.b = util::read_varint_bounded(r, util::wire::kMaxSizingParam,
                                  "reconcile::Request b");
  v.y_star = util::read_varint_bounded(r, util::wire::kMaxSizingParam,
                                       "reconcile::Request y_star");
  v.fpr_r = read_fpr(r, "reconcile::Request: fpr not in (0, 1]");
  v.reversed = read_flag(r, "reconcile::Request: invalid reversed flag");
  v.filter = BloomFilterView::parse(r);
  v.span = consumed(before, r);
  return v;
}

reconcile::Request RequestView::materialize() const {
  util::ByteReader r(span);
  return reconcile::Request::deserialize(r);
}

ResponseView ResponseView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  ResponseView v;
  v.missing_count = util::read_varint_bounded(r, util::wire::kMaxWireCollection,
                                              "reconcile::Response count");
  if (v.missing_count > r.remaining() / 32) {
    fail("reconcile::Response: item count exceeds buffer");
  }
  v.missing = r.raw_view(static_cast<std::size_t>(v.missing_count) * 32);
  v.correction = IbltView::parse(r);
  v.has_compensation = read_flag(r, "reconcile::Response: invalid presence flag");
  if (v.has_compensation) v.compensation = BloomFilterView::parse(r);
  v.span = consumed(before, r);
  return v;
}

reconcile::Response ResponseView::materialize() const {
  util::ByteReader r(span);
  return reconcile::Response::deserialize(r);
}

FetchRequestView FetchRequestView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  FetchRequestView v;
  v.id_count = util::read_varint_bounded(r, util::wire::kMaxWireCollection,
                                         "reconcile::FetchRequest count");
  if (v.id_count > r.remaining() / 8) {
    fail("reconcile::FetchRequest: count exceeds buffer");
  }
  v.short_ids = r.raw_view(static_cast<std::size_t>(v.id_count) * 8);
  v.span = consumed(before, r);
  return v;
}

reconcile::FetchRequest FetchRequestView::materialize() const {
  util::ByteReader r(span);
  return reconcile::FetchRequest::deserialize(r);
}

FetchResponseView FetchResponseView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  FetchResponseView v;
  v.item_count = util::read_varint_bounded(r, util::wire::kMaxWireCollection,
                                           "reconcile::FetchResponse count");
  if (v.item_count > r.remaining() / 32) {
    fail("reconcile::FetchResponse: count exceeds buffer");
  }
  v.items = r.raw_view(static_cast<std::size_t>(v.item_count) * 32);
  v.span = consumed(before, r);
  return v;
}

reconcile::FetchResponse FetchResponseView::materialize() const {
  util::ByteReader r(span);
  return reconcile::FetchResponse::deserialize(r);
}

RatelessChunkView RatelessChunkView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  RatelessChunkView v;
  v.start = util::read_varint_bounded(r, util::wire::kMaxRatelessStreamIndex,
                                      "reconcile::RatelessChunk start");
  v.host_count = util::read_varint_bounded(r, util::wire::kMaxWireCollection,
                                           "reconcile::RatelessChunk host_count");
  v.salt = r.u64();
  v.set_checksum = r.u64();
  v.symbol_count =
      util::read_varint_bounded(r, util::wire::kMaxRatelessChunkSymbols,
                                "reconcile::RatelessChunk symbols");
  if (v.symbol_count > r.remaining() / iblt::CodedSymbol::kWireBytes) {
    fail("reconcile::RatelessChunk: symbol count exceeds buffer");
  }
  v.symbols = r.raw_view(static_cast<std::size_t>(v.symbol_count) *
                         iblt::CodedSymbol::kWireBytes);
  v.span = consumed(before, r);
  return v;
}

reconcile::RatelessChunk RatelessChunkView::materialize() const {
  util::ByteReader r(span);
  return reconcile::RatelessChunk::deserialize(r);
}

RatelessNeedView RatelessNeedView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  RatelessNeedView v;
  v.next_index = util::read_varint_bounded(r, util::wire::kMaxRatelessStreamIndex,
                                           "reconcile::RatelessNeed next_index");
  v.count = util::read_varint_bounded(r, util::wire::kMaxRatelessChunkSymbols,
                                      "reconcile::RatelessNeed count");
  v.span = consumed(before, r);
  return v;
}

reconcile::RatelessNeed RatelessNeedView::materialize() const {
  util::ByteReader r(span);
  return reconcile::RatelessNeed::deserialize(r);
}

// --- daemon control-plane views ----------------------------------------------

HelloMsgView HelloMsgView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  HelloMsgView v;
  v.version = r.u32();
  v.backend = r.u8();
  if (v.backend > 1) fail("daemon::HelloMsg: unknown backend");
  v.item_count = util::read_varint_bounded(r, util::wire::kMaxDaemonItemCount,
                                           "daemon::HelloMsg::item_count");
  v.span = consumed(before, r);
  return v;
}

daemon::HelloMsg HelloMsgView::materialize() const {
  util::ByteReader r(span);
  return daemon::HelloMsg::deserialize(r);
}

ByeMsgView ByeMsgView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  ByeMsgView v;
  v.ok = r.u8();
  if (v.ok > 1) fail("daemon::ByeMsg: non-canonical ok flag");
  v.rounds = r.u32();
  v.span = consumed(before, r);
  return v;
}

daemon::ByeMsg ByeMsgView::materialize() const {
  util::ByteReader r(span);
  return daemon::ByeMsg::deserialize(r);
}

ErrorMsgView ErrorMsgView::parse(util::ByteReader& r) {
  const util::ByteView before = r.tail();
  ErrorMsgView v;
  v.code = r.u8();
  if (v.code > kMaxErrorCode) fail("daemon::ErrorMsg: unknown code");
  const std::uint64_t len = util::read_varint_bounded(
      r, util::wire::kMaxDaemonTextBytes, "daemon::ErrorMsg::detail");
  v.detail = r.raw_view(static_cast<std::size_t>(len));
  v.span = consumed(before, r);
  return v;
}

daemon::ErrorMsg ErrorMsgView::materialize() const {
  util::ByteReader r(span);
  return daemon::ErrorMsg::deserialize(r);
}

// --- frame view --------------------------------------------------------------

std::optional<FrameView> FrameView::parse(util::ByteView data,
                                          std::uint64_t max_payload) {
  if (data.size() < kEnvelopeBytes) return std::nullopt;

  const std::uint8_t* head = data.data();
  if (std::memcmp(head, kFrameMagic.data(), kFrameMagic.size()) != 0) {
    fail("frame: bad magic");
  }

  const std::uint8_t* cmd = head + kFrameMagic.size();
  std::size_t name_len = 0;
  while (name_len < kFrameCommandBytes && cmd[name_len] != 0) ++name_len;
  for (std::size_t i = name_len; i < kFrameCommandBytes; ++i) {
    if (cmd[i] != 0) fail("frame: command not NUL-padded");
  }
  const std::string name(cmd, cmd + name_len);
  const std::optional<MessageType> type = command_from_name(name);
  if (!type) {
    throw util::DeserializeError("frame: unknown command \"" + name + "\"");
  }

  const std::uint8_t* len_field = cmd + kFrameCommandBytes;
  std::uint32_t length = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(len_field[i]) << (8 * i);
  }
  if (length > max_payload) {
    throw util::DeserializeError("frame: payload length " + std::to_string(length) +
                                 " exceeds cap " + std::to_string(max_payload));
  }

  if (data.size() < kEnvelopeBytes + length) return std::nullopt;

  FrameView v;
  v.type = *type;
  v.payload = data.subspan(kEnvelopeBytes, length);
  const std::array<std::uint8_t, 4> expect = frame_checksum(v.payload);
  if (std::memcmp(len_field + 4, expect.data(), expect.size()) != 0) {
    throw util::DeserializeError("frame: checksum mismatch for \"" + name + "\"");
  }
  v.span = data.first(kEnvelopeBytes + length);
  return v;
}

Message FrameView::materialize() const {
  Message msg;
  msg.type = type;
  msg.payload.assign(payload.begin(), payload.end());
  return msg;
}

}  // namespace graphene::net::views
