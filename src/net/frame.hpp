// TCP framing for net::Message — the bytes the relay daemon actually ships.
//
// Every message rides the 24-byte envelope message.hpp has always accounted
// for (4-byte magic, 12-byte NUL-padded command, 4-byte LE payload length,
// 4-byte checksum), followed by the payload. A TCP stream has no message
// boundaries: peers deliver frames split at arbitrary points and coalesce
// several per read, so decoding is an incremental FrameReader that absorbs
// raw chunks and yields complete messages as they close.
//
// Every field of the envelope is validated against an adversarial peer
// before the payload is trusted:
//   * magic must match (cross-protocol or desynchronized peers fail fast);
//   * the command must be NUL-padded exactly and name a known MessageType;
//   * the length is capped by util::wire::kMaxFramePayload *before* any
//     buffering decision, so a hostile prefix cannot pin memory;
//   * the checksum (first 4 bytes of double-SHA256, Bitcoin convention) must
//     match the payload, so link corruption surfaces as a typed error here
//     instead of as garbage inside a deserializer.
// Violations throw util::DeserializeError naming the field; the connection
// owner treats that as a protocol-fatal close (docs/DAEMON.md).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "net/message.hpp"
#include "util/bytes.hpp"
#include "util/wire_limits.hpp"

namespace graphene::net {

/// Network magic opening every frame ("GRPH").
inline constexpr std::array<std::uint8_t, 4> kFrameMagic = {0x47, 0x52, 0x50, 0x48};

/// Width of the NUL-padded command field.
inline constexpr std::size_t kFrameCommandBytes = 12;

static_assert(kEnvelopeBytes == 4 + kFrameCommandBytes + 4 + 4,
              "envelope accounting and framing layout must agree");

/// First four bytes of SHA256(SHA256(payload)).
[[nodiscard]] std::array<std::uint8_t, 4> frame_checksum(util::ByteView payload) noexcept;

/// Serializes one message as envelope + payload. Throws util::DeserializeError
/// if the payload exceeds `max_payload` — a local bug, but the encoder
/// enforcing the same cap as the decoder keeps the limit symmetric.
[[nodiscard]] util::Bytes encode_frame(
    const Message& msg, std::uint64_t max_payload = util::wire::kMaxFramePayload);

/// Appends the frame for `msg` directly onto `out` (a daemon send queue):
/// byte-identical to encode_frame(), without the intermediate buffer.
void encode_frame_into(util::Bytes& out, const Message& msg,
                       std::uint64_t max_payload = util::wire::kMaxFramePayload);

/// Scatter framing: begin_frame() writes the envelope with the length and
/// checksum fields reserved, the caller serializes the payload straight into
/// `w` (e.g. via the serialize_into() family), and end_frame() patches the
/// envelope in place — no per-message payload buffer anywhere.
///
///   util::ByteWriter w(std::move(conn.out));
///   const FramePatch p = net::begin_frame(w, MessageType::kIblt);
///   table.serialize_into(w);
///   net::end_frame(w, p);   // throws if the payload outgrew max_payload
///   conn.out = w.take();
struct FramePatch {
  std::size_t envelope_start = 0;
};

[[nodiscard]] FramePatch begin_frame(util::ByteWriter& w, MessageType type);
void end_frame(util::ByteWriter& w, const FramePatch& patch,
               std::uint64_t max_payload = util::wire::kMaxFramePayload);

/// Incremental frame decoder over a byte stream.
///
///   FrameReader reader;
///   reader.absorb(bytes_from_socket);
///   while (std::optional<Message> msg = reader.next()) handle(*msg);
///
/// next() returns nullopt when the buffered bytes end mid-frame (absorb more
/// and retry) and throws util::DeserializeError on the first malformed
/// envelope — after which the stream is unsynchronized and the connection
/// must close (the reader stays in the throwing state by design).
class FrameReader {
 public:
  explicit FrameReader(std::uint64_t max_payload = util::wire::kMaxFramePayload) noexcept
      : max_payload_(max_payload) {}

  /// Appends stream bytes. Absorbing is cheap; all validation happens in
  /// next(). Throws util::DeserializeError if buffering would exceed the
  /// envelope + max_payload high-water mark times two — only reachable when
  /// the caller keeps absorbing after next() threw.
  void absorb(util::ByteView data);

  /// Decodes the next complete frame, or nullopt if the buffer ends mid-
  /// frame. Throws util::DeserializeError on a malformed envelope.
  [[nodiscard]] std::optional<Message> next();

  /// Bytes absorbed but not yet consumed by next().
  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size() - pos_; }

  /// True when the buffer currently ends inside a frame — i.e. a peer that
  /// disconnects now abandons a partially-delivered message.
  [[nodiscard]] bool mid_frame() const noexcept { return buffered() != 0; }

 private:
  std::uint64_t max_payload_;
  util::Bytes buf_;
  std::size_t pos_ = 0;
};

}  // namespace graphene::net
