#include "daemon/loadgen.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "daemon/client.hpp"
#include "net/frame.hpp"
#include "obs/obs.hpp"
#include "util/wire_limits.hpp"

namespace graphene::daemon {
namespace {

struct ClientConn {
  explicit ClientConn(std::uint64_t max_payload) : reader(max_payload) {}

  int fd = -1;
  net::FrameReader reader;
  std::unique_ptr<ClientSession> session;
  util::Bytes out;
  std::size_t out_pos = 0;
  std::uint32_t sessions_done = 0;
  std::uint64_t session_start_ns = 0;
  bool connecting = true;  ///< nonblocking connect still in flight
  bool done = false;       ///< all sessions finished; draining, then close

  [[nodiscard]] std::size_t pending() const noexcept { return out.size() - out_pos; }
};

/// One worker's tallies; merged after join, so no locking anywhere.
struct WorkerResult {
  std::uint64_t sessions_ok = 0;
  std::uint64_t sessions_failed = 0;
  std::uint64_t conn_errors = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::vector<std::uint64_t> latencies_ns;
};

class Worker {
 public:
  Worker(const LoadgenOptions& opts, std::uint32_t conns, std::uint64_t deadline_abs)
      : opts_(opts), n_conns_(conns), deadline_abs_(deadline_abs) {}

  WorkerResult run() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      result_.conn_errors += n_conns_;
      return std::move(result_);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts_.port);
    if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
      ::close(epoll_fd_);
      result_.conn_errors += n_conns_;
      return std::move(result_);
    }
    for (std::uint32_t i = 0; i < n_conns_; ++i) open_conn(addr);
    loop();
    for (auto& [fd, conn] : conns_) {
      // Still open at the deadline (or after a loop abort): a failed peer.
      ++result_.conn_errors;
      ::close(fd);
      (void)conn;
    }
    conns_.clear();
    ::close(epoll_fd_);
    return std::move(result_);
  }

 private:
  void open_conn(const sockaddr_in& addr) {
    const int fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      ++result_.conn_errors;
      return;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const int rc = ::connect(
        fd, static_cast<const sockaddr*>(static_cast<const void*>(&addr)),
        sizeof addr);
    if (rc < 0 && errno != EINPROGRESS) {
      ::close(fd);
      ++result_.conn_errors;
      return;
    }
    auto conn = std::make_unique<ClientConn>(util::wire::kMaxFramePayload);
    conn->fd = fd;
    if (rc == 0) {
      conn->connecting = false;
      start_session(*conn);
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      ++result_.conn_errors;
      return;
    }
    conns_.emplace(fd, std::move(conn));
  }

  void start_session(ClientConn& conn) {
    conn.session = std::make_unique<ClientSession>(*opts_.items, opts_.protocol);
    queue(conn, conn.session->hello());
    conn.session_start_ns = obs::monotonic_ns();
  }

  void queue(ClientConn& conn, const net::Message& msg) {
    net::encode_frame_into(conn.out, msg);
  }

  void loop() {
    epoll_event events[64];
    while (!conns_.empty()) {
      const std::uint64_t now = obs::monotonic_ns();
      if (now >= deadline_abs_) return;  // survivors counted by run()
      const std::uint64_t left_ms = (deadline_abs_ - now) / 1'000'000 + 1;
      const int timeout = left_ms > 100 ? 100 : static_cast<int>(left_ms);
      const int n = ::epoll_wait(epoll_fd_, events, 64, timeout);
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        const auto it = conns_.find(fd);
        if (it == conns_.end()) continue;
        handle(*it->second, events[i].events);
      }
    }
  }

  void handle(ClientConn& conn, std::uint32_t events) {
    if (conn.connecting) {
      if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
        drop(conn, /*error=*/true);
        return;
      }
      if ((events & EPOLLOUT) == 0) return;
      int err = 0;
      socklen_t len = sizeof err;
      if (::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
        drop(conn, /*error=*/true);
        return;
      }
      conn.connecting = false;
      start_session(conn);
    }
    if ((events & EPOLLIN) != 0 && !readable(conn)) return;
    if (!flush(conn)) {
      drop(conn, /*error=*/true);
      return;
    }
    if (conn.done && conn.pending() == 0) {
      drop(conn, /*error=*/false);
      return;
    }
    update_interest(conn);
  }

  /// Returns false if the connection was dropped.
  bool readable(ClientConn& conn) {
    std::uint8_t buf[65536];
    for (;;) {
      const ssize_t n = ::read(conn.fd, buf, sizeof buf);
      if (n > 0) {
        result_.bytes_in += static_cast<std::uint64_t>(n);
        try {
          conn.reader.absorb(util::ByteView(buf, static_cast<std::size_t>(n)));
          if (!dispatch_frames(conn)) return false;
        } catch (const util::DeserializeError&) {
          drop(conn, /*error=*/true);
          return false;
        }
        continue;
      }
      if (n == 0) {
        drop(conn, /*error=*/!conn.done);
        return false;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      drop(conn, /*error=*/true);
      return false;
    }
  }

  /// Returns false if the connection was dropped.
  bool dispatch_frames(ClientConn& conn) {
    while (std::optional<net::Message> msg = conn.reader.next()) {
      if (!conn.session) {
        drop(conn, /*error=*/true);  // daemon spoke outside a session
        return false;
      }
      std::vector<net::Message> replies;
      const ClientSession::Status status = conn.session->on_message(*msg, replies);
      for (const net::Message& reply : replies) queue(conn, reply);
      if (status == ClientSession::Status::kInFlight) continue;
      const std::uint64_t latency = obs::monotonic_ns() - conn.session_start_ns;
      result_.latencies_ns.push_back(latency);
      if (status == ClientSession::Status::kComplete) {
        ++result_.sessions_ok;
      } else {
        ++result_.sessions_failed;
      }
      conn.session.reset();
      if (++conn.sessions_done >= opts_.sessions_per_conn) {
        conn.done = true;  // drain the bye, then close
        break;
      }
      start_session(conn);
    }
    return true;
  }

  /// Returns false on a dead transport.
  bool flush(ClientConn& conn) {
    while (conn.pending() > 0) {
      const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_pos,
                               conn.pending(), MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_pos += static_cast<std::size_t>(n);
        result_.bytes_out += static_cast<std::uint64_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    if (conn.out_pos == conn.out.size()) {
      conn.out.clear();
      conn.out_pos = 0;
    }
    return true;
  }

  void update_interest(ClientConn& conn) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    if (conn.connecting || conn.pending() > 0) ev.events |= EPOLLOUT;
    ev.data.fd = conn.fd;
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  void drop(ClientConn& conn, bool error) {
    if (error) ++result_.conn_errors;
    const int fd = conn.fd;
    ::close(fd);
    conns_.erase(fd);  // destroys `conn`
  }

  const LoadgenOptions& opts_;
  std::uint32_t n_conns_;
  std::uint64_t deadline_abs_;
  int epoll_fd_ = -1;
  std::unordered_map<int, std::unique_ptr<ClientConn>> conns_;
  WorkerResult result_;
};

std::uint64_t quantile_ns(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size()));
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

LoadgenReport run_loadgen(const LoadgenOptions& opts) {
  if (opts.items == nullptr) throw std::runtime_error("loadgen: no client item set");
  if (opts.connections == 0) throw std::runtime_error("loadgen: zero connections");
  const std::uint32_t workers = std::max<std::uint32_t>(1, opts.workers);

  const std::uint64_t start_ns = obs::monotonic_ns();
  const std::uint64_t deadline_abs = start_ns + opts.deadline_ns;

  std::vector<WorkerResult> results(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    // Spread connections evenly; the first `connections % workers` workers
    // take one extra.
    const std::uint32_t share =
        opts.connections / workers + (w < opts.connections % workers ? 1 : 0);
    threads.emplace_back([&opts, &results, w, share, deadline_abs] {
      Worker worker(opts, share, deadline_abs);
      results[w] = worker.run();
    });
  }
  for (std::thread& t : threads) t.join();
  const std::uint64_t elapsed = obs::monotonic_ns() - start_ns;

  LoadgenReport report;
  report.elapsed_ns = elapsed;
  std::vector<std::uint64_t> latencies;
  for (WorkerResult& r : results) {
    report.sessions_ok += r.sessions_ok;
    report.sessions_failed += r.sessions_failed;
    report.conn_errors += r.conn_errors;
    report.bytes_in += r.bytes_in;
    report.bytes_out += r.bytes_out;
    latencies.insert(latencies.end(), r.latencies_ns.begin(), r.latencies_ns.end());
  }
  std::sort(latencies.begin(), latencies.end());
  report.p50_ns = quantile_ns(latencies, 0.50);
  report.p95_ns = quantile_ns(latencies, 0.95);
  report.p99_ns = quantile_ns(latencies, 0.99);
  if (elapsed > 0) {
    report.sessions_per_sec = static_cast<double>(report.sessions_ok) * 1e9 /
                              static_cast<double>(elapsed);
  }
  if (obs::Registry* reg = obs::enabled(opts.protocol.obs)) {
    auto& hist = reg->histogram("loadgen_session_ns");
    for (const std::uint64_t v : latencies) hist.observe(v);
  }
  return report;
}

}  // namespace graphene::daemon
