#include "daemon/wire.hpp"

#include <algorithm>
#include <string_view>

#include "util/varint.hpp"
#include "util/wire_limits.hpp"

namespace graphene::daemon {

void HelloMsg::serialize_into(util::ByteWriter& w) const {
  w.u32(version);
  w.u8(backend);
  util::write_varint(w, item_count);
}

util::Bytes HelloMsg::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

HelloMsg HelloMsg::deserialize(util::ByteReader& reader) {
  HelloMsg msg;
  msg.version = reader.u32();
  msg.backend = reader.u8();
  if (msg.backend > 1) {
    throw util::DeserializeError("daemon::HelloMsg: unknown backend " +
                                 std::to_string(msg.backend));
  }
  msg.item_count =
      util::read_varint_bounded(reader, util::wire::kMaxDaemonItemCount,
                                "daemon::HelloMsg::item_count");
  return msg;
}

void ByeMsg::serialize_into(util::ByteWriter& w) const {
  w.u8(ok);
  w.u32(rounds);
}

util::Bytes ByeMsg::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

ByeMsg ByeMsg::deserialize(util::ByteReader& reader) {
  ByeMsg msg;
  msg.ok = reader.u8();
  if (msg.ok > 1) {
    throw util::DeserializeError("daemon::ByeMsg: non-canonical ok flag");
  }
  msg.rounds = reader.u32();
  return msg;
}

const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kProtocol: return "protocol";
    case ErrorCode::kMalformed: return "malformed";
    case ErrorCode::kLimit: return "limit";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kShutdown: return "shutdown";
  }
  return "unknown";
}

void ErrorMsg::serialize_into(util::ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(code));
  // The detail is advisory; truncate rather than fail so error paths (which
  // embed exception texts of unpredictable length) can never throw again.
  const std::size_t len =
      std::min<std::size_t>(detail.size(), util::wire::kMaxDaemonTextBytes);
  util::write_varint(w, len);
  w.raw(util::str_bytes(std::string_view(detail).substr(0, len)));
}

util::Bytes ErrorMsg::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

ErrorMsg ErrorMsg::deserialize(util::ByteReader& reader) {
  ErrorMsg msg;
  const std::uint8_t code = reader.u8();
  if (code > static_cast<std::uint8_t>(ErrorCode::kShutdown)) {
    throw util::DeserializeError("daemon::ErrorMsg: unknown code " +
                                 std::to_string(code));
  }
  msg.code = static_cast<ErrorCode>(code);
  const std::uint64_t len = util::read_varint_bounded(
      reader, util::wire::kMaxDaemonTextBytes, "daemon::ErrorMsg::detail");
  const util::Bytes raw = reader.raw(static_cast<std::size_t>(len));
  msg.detail.assign(raw.begin(), raw.end());
  return msg;
}

}  // namespace graphene::daemon
