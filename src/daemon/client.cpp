#include "daemon/client.hpp"

#include "graphene/errors.hpp"

namespace graphene::daemon {

ClientSession::ClientSession(const reconcile::ItemSet& items, core::ProtocolConfig cfg)
    : items_(&items), cfg_(cfg), backend_(reconcile::make_client_backend(items, cfg)) {}

ClientSession::~ClientSession() = default;
ClientSession::ClientSession(ClientSession&&) noexcept = default;

net::Message ClientSession::hello() const {
  HelloMsg hello;
  hello.backend =
      cfg_.reconcile_backend == core::ReconcileBackend::kRatelessIblt ? 1 : 0;
  hello.item_count = items_->size();
  return {net::MessageType::kDaemonHello, hello.serialize()};
}

ClientSession::Status ClientSession::on_message(const net::Message& msg,
                                                std::vector<net::Message>& out) {
  if (status_ != Status::kInFlight) return status_;

  if (msg.type == net::MessageType::kDaemonError) {
    // The daemon closes right after an error frame; do not answer it.
    try {
      util::ByteReader reader(util::ByteView(msg.payload));
      error_ = ErrorMsg::deserialize(reader);
      have_error_ = true;
    } catch (const util::DeserializeError&) {
      // A garbled error frame is still a failed session.
    }
    status_ = Status::kFailed;
    return status_;
  }

  try {
    const reconcile::WireMsg wire{msg.type, msg.payload};
    outcome_ = backend_->absorb_wire(wire);
    if (reconcile::needs_more(outcome_.status)) {
      if (++rounds_ > cfg_.reconcile_round_cap) return finish(out, /*ok=*/false);
      out.push_back(backend_->next_request().to_message());
      return status_;
    }
    return finish(out, outcome_.status == reconcile::Outcome::Status::kComplete);
  } catch (const core::ProtocolError&) {
    return finish(out, /*ok=*/false);
  } catch (const util::DeserializeError&) {
    return finish(out, /*ok=*/false);
  }
}

ClientSession::Status ClientSession::finish(std::vector<net::Message>& out, bool ok) {
  ByeMsg bye;
  bye.ok = ok ? 1 : 0;
  bye.rounds = rounds_;
  out.push_back({net::MessageType::kDaemonBye, bye.serialize()});
  status_ = ok ? Status::kComplete : Status::kFailed;
  return status_;
}

}  // namespace graphene::daemon
