// Control-plane messages of the relay daemon.
//
// The reconciliation payloads themselves (offers, requests, chunks) are the
// existing reconcile::WireMsg vocabulary; the daemon adds exactly three
// frames around them:
//
//   hello  (client → daemon)  opens a session: protocol version, requested
//                             backend, and the client's set size — the
//                             host-side open() input.
//   bye    (client → daemon)  closes a session: the client's verdict and
//                             round count, so the daemon can meter latency
//                             and success without seeing the client's state.
//   error  (daemon → client)  typed pre-close diagnostic: a machine-readable
//                             code plus a bounded human-readable detail.
//
// A connection carries sessions back-to-back: hello … bye, hello … bye, so
// one TCP handshake amortizes over many reconciliations (the loadgen's
// sessions/sec depends on it). All fields are bounded by util/wire_limits
// before they are believed; deserializers throw util::DeserializeError.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace graphene::daemon {

/// Protocol version spoken by this daemon. A hello with any other version is
/// rejected with ErrorCode::kUnsupported — no negotiation at version 1.
inline constexpr std::uint32_t kDaemonProtocolVersion = 1;

/// Session open. `backend` mirrors core::ReconcileBackend's numeric values
/// but is validated strictly on deserialize (only 0 and 1 exist on the wire).
struct HelloMsg {
  std::uint32_t version = kDaemonProtocolVersion;
  std::uint8_t backend = 0;       ///< 0 = Graphene, 1 = rateless IBLT
  std::uint64_t item_count = 0;   ///< client's set size (host open() input)

  /// Appends the wire encoding to `w` (scatter form of serialize()).

  void serialize_into(util::ByteWriter& w) const;

  [[nodiscard]] util::Bytes serialize() const;
  static HelloMsg deserialize(util::ByteReader& reader);
};

/// Session close, reported by the client.
struct ByeMsg {
  std::uint8_t ok = 0;          ///< 1 = set reconciled and certified, 0 = gave up
  std::uint32_t rounds = 0;     ///< client-counted message round trips

  /// Appends the wire encoding to `w` (scatter form of serialize()).

  void serialize_into(util::ByteWriter& w) const;

  [[nodiscard]] util::Bytes serialize() const;
  static ByeMsg deserialize(util::ByteReader& reader);
};

/// Typed error the daemon sends before closing a misbehaving connection.
enum class ErrorCode : std::uint8_t {
  kProtocol = 0,     ///< backend rejected the request (typed ProtocolError)
  kMalformed = 1,    ///< frame or payload failed to deserialize
  kLimit = 2,        ///< a daemon policy cap was exceeded
  kUnsupported = 3,  ///< unknown version or backend in hello
  kShutdown = 4,     ///< daemon is stopping; session aborted
};

[[nodiscard]] const char* to_string(ErrorCode code) noexcept;

struct ErrorMsg {
  ErrorCode code = ErrorCode::kProtocol;
  std::string detail;  ///< bounded by util::wire::kMaxDaemonTextBytes

  /// Appends the wire encoding to `w` (scatter form of serialize()).

  void serialize_into(util::ByteWriter& w) const;

  [[nodiscard]] util::Bytes serialize() const;
  static ErrorMsg deserialize(util::ByteReader& reader);
};

}  // namespace graphene::daemon
