#include "daemon/daemon.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "net/frame.hpp"
#include "obs/obs.hpp"
#include "util/hash.hpp"

namespace graphene::daemon {

namespace {

[[noreturn]] void raise_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    raise_errno("daemon: fcntl(O_NONBLOCK)");
  }
}

}  // namespace

/// Per-connection transport state. The protocol lives in `session`; this is
/// the socket-side residue: the bounded outbound buffer and epoll interest.
struct RelayDaemon::Conn {
  Conn(int fd_in, const reconcile::ItemSet& items, std::uint64_t salt,
       const DaemonLimits& limits, const core::ProtocolConfig& proto)
      : fd(fd_in), session(items, salt, limits, proto) {}

  int fd;
  PeerSession session;
  util::Bytes out;          ///< encoded frames not yet written
  std::size_t out_pos = 0;  ///< bytes of `out` already written
  std::uint32_t interest = 0;
  bool paused = false;    ///< reads suspended by backpressure
  bool draining = false;  ///< session closed; flushing queued bytes
  std::uint64_t drain_deadline_ns = 0;

  [[nodiscard]] std::size_t pending() const noexcept { return out.size() - out_pos; }
};

RelayDaemon::RelayDaemon(reconcile::ItemSet items, DaemonOptions opts)
    : items_(std::move(items)), opts_(opts) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) raise_errno("daemon: epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) raise_errno("daemon: eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    raise_errno("daemon: epoll_ctl(wake)");
  }
}

RelayDaemon::~RelayDaemon() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

std::uint16_t RelayDaemon::listen(const std::string& host, std::uint16_t port) {
  if (listen_fd_ >= 0) throw std::logic_error("daemon: already listening");
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) raise_errno("daemon: socket");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("daemon: bad listen address " + host);
  }
  // sockaddr_in → sockaddr via void*: the POSIX-blessed pun without a
  // reinterpret_cast (banned outside src/util).
  if (::bind(fd, static_cast<const sockaddr*>(static_cast<const void*>(&addr)),
             sizeof addr) < 0) {
    ::close(fd);
    raise_errno("daemon: bind");
  }
  if (::listen(fd, 512) < 0) {
    ::close(fd);
    raise_errno("daemon: listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, static_cast<sockaddr*>(static_cast<void*>(&bound)), &len) < 0) {
    ::close(fd);
    raise_errno("daemon: getsockname");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    raise_errno("daemon: epoll_ctl(listen)");
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  return port_;
}

void RelayDaemon::adopt(int fd) {
  {
    const util::MutexLock lock(intake_mu_);
    intake_.push_back(fd);
  }
  wake();
}

void RelayDaemon::start() {
  if (running_.exchange(true)) throw std::logic_error("daemon: already started");
  stop_requested_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void RelayDaemon::stop() {
  if (thread_.joinable()) {
    stop_requested_.store(true, std::memory_order_release);
    wake();
    thread_.join();
  }
  running_.store(false, std::memory_order_release);

  // Loop thread is gone (or never existed): finalize single-threaded.
  // Stop accepting first — later connects get RST instead of sitting in a
  // backlog nobody will ever serve.
  if (listen_fd_ >= 0) {
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  drain_intake();
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (const int fd : fds) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn& conn = *it->second;
    std::vector<net::Message> out;
    conn.session.close(CloseReason::kShutdown, ErrorCode::kShutdown,
                       "daemon: shutting down", out);
    queue_messages(conn, out);
    flush_writes(conn);  // one best-effort pass; a bounded abort, not a drain
    finish_conn(conn);
  }
}

void RelayDaemon::run() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    (void)poll_once(next_timeout_ms(obs::monotonic_ns()));
  }
}

bool RelayDaemon::poll_once(int timeout_ms) {
  drain_intake();
  epoll_event events[128];
  int n = ::epoll_wait(epoll_fd_, events, 128, timeout_ms);
  if (n < 0) n = 0;  // EINTR: fall through to the deadline sweep
  bool progress = n > 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd_) {
      std::uint64_t v = 0;
      (void)!::read(wake_fd_, &v, sizeof v);
      drain_intake();
      continue;
    }
    if (fd == listen_fd_) {
      accept_ready();
      continue;
    }
    handle_io(fd, events[i].events);
  }
  sweep_deadlines(obs::monotonic_ns());
  return progress;
}

void RelayDaemon::drain_intake() {
  std::vector<int> pending;
  {
    const util::MutexLock lock(intake_mu_);
    pending.swap(intake_);
  }
  for (const int fd : pending) add_connection(fd);
}

void RelayDaemon::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (or transient): the loop will be re-armed
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    add_connection(fd);
  }
}

void RelayDaemon::add_connection(int fd) {
  if (open_conns_.load(std::memory_order_relaxed) >= opts_.max_connections) {
    ::close(fd);
    conns_refused_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  set_nonblocking(fd);
  const std::uint64_t salt = util::mix64(
      opts_.salt ^ conns_opened_.load(std::memory_order_relaxed) ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(fd)) << 32));
  auto conn = std::make_unique<Conn>(fd, items_, salt, opts_.limits, opts_.protocol);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    conns_refused_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  conn->interest = EPOLLIN;
  // Stamp activity so a connection that never sends a byte still ages into
  // the idle timeout.
  (void)conn->session.check_deadlines(obs::monotonic_ns());
  conns_.emplace(fd, std::move(conn));
  conns_opened_.fetch_add(1, std::memory_order_relaxed);
  open_conns_.fetch_add(1, std::memory_order_release);
  if (obs::Registry* reg = obs::enabled(opts_.protocol.obs)) {
    reg->gauge("daemon_connections_open")
        .set(static_cast<double>(open_conns_.load(std::memory_order_relaxed)));
  }
}

void RelayDaemon::handle_io(int fd, std::uint32_t events) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;  // closed earlier in this batch
  Conn& conn = *it->second;

  if ((events & (EPOLLHUP | EPOLLERR)) != 0 && (events & EPOLLIN) == 0) {
    // Peer is gone and left nothing to read: a reset-style end.
    conn.session.on_eof();
    finish_conn(conn);
    return;
  }
  if ((events & EPOLLIN) != 0 && !conn.draining && !conn.paused) {
    handle_readable(conn);
    if (conns_.find(fd) == conns_.end()) return;  // closed during read
  }
  if ((events & EPOLLOUT) != 0) {
    if (!flush_writes(conn)) {
      conn.session.on_eof();
      finish_conn(conn);
      return;
    }
    if (conn.draining && conn.pending() == 0) {
      finish_conn(conn);
      return;
    }
  }
  update_interest(conn);
}

void RelayDaemon::handle_readable(Conn& conn) {
  std::uint8_t buf[65536];
  const std::uint64_t now = obs::monotonic_ns();
  for (;;) {
    const ssize_t n = ::read(conn.fd, buf, sizeof buf);
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
      std::vector<net::Message> replies;
      const bool alive =
          conn.session.on_bytes(now, util::ByteView(buf, static_cast<std::size_t>(n)),
                                replies);
      queue_messages(conn, replies);
      if (!alive) {
        begin_drain_or_close(conn);
        return;
      }
      if (conn.pending() > opts_.limits.send_queue_hard_cap) {
        // The peer requested far more than it drains; its queue is full, so
        // an error frame could not be delivered anyway — abort.
        std::vector<net::Message> none;
        conn.session.close(CloseReason::kLimit, ErrorCode::kLimit,
                           "daemon: send queue hard cap", none);
        finish_conn(conn);
        return;
      }
      if (conn.pending() > opts_.limits.send_queue_cap) {
        conn.paused = true;  // backpressure: stop reading until drained
        break;
      }
      continue;
    }
    if (n == 0) {
      conn.session.on_eof();
      begin_drain_or_close(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn.session.on_eof();  // ECONNRESET and kin: transport died mid-session
    finish_conn(conn);
    return;
  }
  if (!flush_writes(conn)) {
    conn.session.on_eof();
    finish_conn(conn);
    return;
  }
  update_interest(conn);
}

void RelayDaemon::queue_messages(Conn& conn, const std::vector<net::Message>& msgs) {
  // Frames are laid down directly in the send queue — no per-frame buffer.
  for (const net::Message& msg : msgs) {
    net::encode_frame_into(conn.out, msg, opts_.limits.max_frame_payload);
  }
}

bool RelayDaemon::flush_writes(Conn& conn) {
  while (conn.pending() > 0) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_pos, conn.pending(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_pos += static_cast<std::size_t>(n);
      bytes_out_.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;  // EPIPE/ECONNRESET: peer is gone
  }
  if (conn.out_pos == conn.out.size()) {
    conn.out.clear();
    conn.out_pos = 0;
  } else if (conn.out_pos > (1U << 20)) {
    conn.out.erase(conn.out.begin(),
                   conn.out.begin() + static_cast<std::ptrdiff_t>(conn.out_pos));
    conn.out_pos = 0;
  }
  if (conn.paused && conn.pending() < opts_.limits.send_queue_cap / 2) {
    conn.paused = false;  // resume reading below the low watermark
  }
  return true;
}

void RelayDaemon::update_interest(Conn& conn) {
  std::uint32_t want = 0;
  if (conn.draining) {
    want = EPOLLOUT;
  } else {
    if (!conn.paused) want |= EPOLLIN;
    if (conn.pending() > 0) want |= EPOLLOUT;
  }
  if (want == conn.interest) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn.fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
    conn.interest = want;
  }
}

void RelayDaemon::begin_drain_or_close(Conn& conn) {
  if (!flush_writes(conn) || conn.pending() == 0) {
    finish_conn(conn);
    return;
  }
  // Closed session with queued bytes (typically its final error frame): give
  // the peer one bounded drain window, then close regardless.
  conn.draining = true;
  conn.drain_deadline_ns = obs::monotonic_ns() + opts_.drain_timeout_ns;
  update_interest(conn);
}

void RelayDaemon::finish_conn(Conn& conn) {
  const SessionStats& stats = conn.session.stats();
  sessions_ok_.fetch_add(stats.sessions_ok, std::memory_order_relaxed);
  sessions_failed_.fetch_add(stats.sessions_failed, std::memory_order_relaxed);
  const auto reason = static_cast<std::size_t>(conn.session.reason());
  closed_by_reason_[reason].fetch_add(1, std::memory_order_relaxed);
  conns_closed_.fetch_add(1, std::memory_order_relaxed);
  if (obs::Registry* reg = obs::enabled(opts_.protocol.obs)) {
    reg->counter("daemon_conns_closed_total",
                 {{"reason", to_string(conn.session.reason())}})
        .inc();
  }
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  const int fd = conn.fd;
  conns_.erase(fd);  // destroys `conn`
  open_conns_.fetch_sub(1, std::memory_order_release);
  if (obs::Registry* reg = obs::enabled(opts_.protocol.obs)) {
    reg->gauge("daemon_connections_open")
        .set(static_cast<double>(open_conns_.load(std::memory_order_relaxed)));
  }
}

void RelayDaemon::sweep_deadlines(std::uint64_t now_ns) {
  dead_fds_.clear();
  for (const auto& [fd, conn] : conns_) {
    if (conn->draining) {
      if (now_ns >= conn->drain_deadline_ns) dead_fds_.push_back(fd);
      continue;
    }
    if (!conn->session.check_deadlines(now_ns)) dead_fds_.push_back(fd);
  }
  for (const int fd : dead_fds_) {
    const auto it = conns_.find(fd);
    if (it != conns_.end()) finish_conn(*it->second);
  }
}

int RelayDaemon::next_timeout_ms(std::uint64_t now_ns) const {
  std::uint64_t deadline = UINT64_MAX;
  for (const auto& [fd, conn] : conns_) {
    const std::uint64_t d =
        conn->draining ? conn->drain_deadline_ns : conn->session.next_deadline_ns();
    if (d < deadline) deadline = d;
  }
  if (deadline == UINT64_MAX) return 500;  // idle heartbeat; wake_fd_ cuts it short
  if (deadline <= now_ns) return 0;
  const std::uint64_t ms = (deadline - now_ns) / 1'000'000 + 1;
  return ms > 500 ? 500 : static_cast<int>(ms);
}

void RelayDaemon::wake() {
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof one);
}

DaemonStats RelayDaemon::stats() const {
  DaemonStats s;
  s.conns_opened = conns_opened_.load(std::memory_order_relaxed);
  s.conns_closed = conns_closed_.load(std::memory_order_relaxed);
  s.conns_refused = conns_refused_.load(std::memory_order_relaxed);
  s.sessions_ok = sessions_ok_.load(std::memory_order_relaxed);
  s.sessions_failed = sessions_failed_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kCloseReasonCount; ++i) {
    s.closed_by_reason[i] = closed_by_reason_[i].load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace graphene::daemon
