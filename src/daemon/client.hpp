// Client-side session driver for the relay daemon protocol.
//
// ClientSession is the mirror image of PeerSession and just as transport-
// free: it wraps a reconcile::ClientBackend, speaks the hello/bye control
// frames, and bounds its own round trips with the config's
// reconcile_round_cap, so a hostile or broken daemon cannot keep it in
// session forever. tools/loadgen, bench/daemon_load, and the deterministic
// harness all drive connections through this one class.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "daemon/wire.hpp"
#include "graphene/params.hpp"
#include "net/message.hpp"
#include "reconcile/backend.hpp"
#include "reconcile/types.hpp"

namespace graphene::daemon {

class ClientSession {
 public:
  enum class Status : std::uint8_t {
    kInFlight,  ///< keep exchanging messages
    kComplete,  ///< host set learned and certified; bye(ok) emitted
    kFailed,    ///< typed failure or round cap; bye(failed) emitted if possible
  };

  /// `items` is borrowed and must outlive the session. The backend is chosen
  /// by cfg.reconcile_backend; cfg also carries the round cap.
  ClientSession(const reconcile::ItemSet& items, core::ProtocolConfig cfg);
  ~ClientSession();
  ClientSession(ClientSession&&) noexcept;
  ClientSession& operator=(ClientSession&&) = delete;
  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  /// The opening frame of the session.
  [[nodiscard]] net::Message hello() const;

  /// Absorbs one daemon message; any frames to send back (next request, or
  /// the closing bye) are appended to `out`.
  Status on_message(const net::Message& msg, std::vector<net::Message>& out);

  [[nodiscard]] Status status() const noexcept { return status_; }
  /// Valid once status() is kComplete.
  [[nodiscard]] const reconcile::Outcome& outcome() const noexcept { return outcome_; }
  /// Round trips consumed (the bye's rounds field).
  [[nodiscard]] std::uint32_t rounds() const noexcept { return rounds_; }
  /// Set when the daemon sent a typed error frame.
  [[nodiscard]] const ErrorMsg* daemon_error() const noexcept {
    return have_error_ ? &error_ : nullptr;
  }

 private:
  Status finish(std::vector<net::Message>& out, bool ok);

  const reconcile::ItemSet* items_;
  core::ProtocolConfig cfg_;
  std::unique_ptr<reconcile::ClientBackend> backend_;
  Status status_ = Status::kInFlight;
  reconcile::Outcome outcome_;
  std::uint32_t rounds_ = 0;
  ErrorMsg error_;
  bool have_error_ = false;
};

}  // namespace graphene::daemon
