// Per-connection protocol state machine of the relay daemon.
//
// PeerSession is deliberately transport-free: it consumes raw stream bytes
// and produces net::Messages to transmit, never touching a socket or a real
// clock. The epoll daemon (daemon.hpp) feeds it what the kernel delivered;
// the deterministic harness (tests/daemon/) feeds it scripted partial reads,
// corrupted bytes, and fake-clock time — the same state machine either way,
// which is what makes the fault suite's guarantees transfer to production.
//
// Lifecycle of one connection:
//
//   kAwaitHello --hello--> kServing --bye--> kAwaitHello   (next session)
//        |                    |
//        +----- any error, cap, timeout, or EOF ----> kClosed(reason)
//
// Termination guarantees (mirroring tests/faults/): every input sequence
// drives the session to kClosed with a typed CloseReason in bounded work —
// malformed frames and backend rejections close kProtocolError/kMalformed
// after an error frame; policy caps (messages per session, sessions per
// connection) close kLimit; silence closes kIdleTimeout and an over-long
// session kSessionTimeout via check_deadlines(). A session never blocks, so
// a connection can only hang if its owner stops calling in — and the daemon's
// loop always does under epoll timeouts.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "daemon/wire.hpp"
#include "graphene/params.hpp"
#include "net/frame.hpp"
#include "reconcile/backend.hpp"
#include "reconcile/types.hpp"

namespace graphene::obs {
class Registry;
}  // namespace graphene::obs

namespace graphene::daemon {

/// Policy knobs of one daemon instance. Defaults are sized for the bench's
/// localhost load; tests shrink them to make every limit reachable.
struct DaemonLimits {
  /// Hard ceiling on one frame's payload (FrameReader cap).
  std::uint64_t max_frame_payload = util::wire::kMaxFramePayload;
  /// Messages the peer may send within one hello..bye session. The Graphene
  /// backend needs ≤ 3 (request, fetch, bye); rateless needs one per chunk,
  /// bounded by the round cap — 256 covers both with an order of magnitude
  /// of slack.
  std::uint32_t session_msg_cap = 256;
  /// Sessions one connection may run before the daemon closes it (resource
  /// rotation; 0 = unlimited).
  std::uint32_t conn_session_cap = 0;
  /// Pending outbound bytes at which the daemon stops reading from the peer
  /// (backpressure watermark).
  std::size_t send_queue_cap = 1 << 20;
  /// Pending outbound bytes at which the daemon gives up on the peer
  /// entirely: a reply burst this far beyond the watermark means the peer
  /// drains slower than it asks.
  std::size_t send_queue_hard_cap = 4 << 20;
  /// Nanoseconds of silence before an open connection is closed.
  std::uint64_t idle_timeout_ns = 30ULL * 1000 * 1000 * 1000;
  /// Nanoseconds one hello..bye session may take end to end.
  std::uint64_t session_timeout_ns = 60ULL * 1000 * 1000 * 1000;
};

/// Why a connection ended. Stable order: these index metrics labels and the
/// soak suite's accounting.
enum class CloseReason : std::uint8_t {
  kOpen = 0,        ///< not closed yet
  kPeerClosed,      ///< clean EOF between sessions
  kPeerReset,       ///< EOF mid-session or mid-frame
  kMalformed,       ///< framing/deserialization error from this peer
  kProtocolError,   ///< backend rejected a request (typed ProtocolError)
  kLimit,           ///< a DaemonLimits cap tripped
  kIdleTimeout,
  kSessionTimeout,
  kShutdown,        ///< daemon stopping
};

[[nodiscard]] const char* to_string(CloseReason reason) noexcept;
inline constexpr std::size_t kCloseReasonCount =
    static_cast<std::size_t>(CloseReason::kShutdown) + 1;

/// Counters one session accumulates; the daemon aggregates these into its
/// registry when the connection closes.
struct SessionStats {
  std::uint64_t sessions_ok = 0;      ///< bye with ok=1
  std::uint64_t sessions_failed = 0;  ///< bye with ok=0
  std::uint64_t messages_in = 0;      ///< complete frames consumed
  std::uint64_t messages_out = 0;     ///< messages produced
};

class PeerSession {
 public:
  /// `items` is the daemon's set (borrowed; outlives the session). `salt`
  /// seeds per-session short-ID keys. `proto` carries obs/pool/param_cache;
  /// its reconcile_backend is overridden by each hello.
  PeerSession(const reconcile::ItemSet& items, std::uint64_t salt,
              const DaemonLimits& limits, core::ProtocolConfig proto);
  ~PeerSession();
  PeerSession(PeerSession&&) noexcept;
  PeerSession& operator=(PeerSession&&) = delete;
  PeerSession(const PeerSession&) = delete;
  PeerSession& operator=(const PeerSession&) = delete;

  /// Feeds stream bytes received at `now_ns`. Replies (including a final
  /// error frame) are appended to `out`. Returns false once the session is
  /// closed — the caller flushes `out` best-effort and closes the transport.
  [[nodiscard]] bool on_bytes(std::uint64_t now_ns, util::ByteView data,
                              std::vector<net::Message>& out);

  /// Peer sent EOF. Clean between sessions, a reset inside one.
  void on_eof();

  /// Applies the idle/session deadlines at `now_ns`. Returns false once the
  /// session is closed (reason kIdleTimeout/kSessionTimeout).
  [[nodiscard]] bool check_deadlines(std::uint64_t now_ns);

  /// Earliest future instant at which check_deadlines() could close this
  /// session — the daemon's epoll-timeout input.
  [[nodiscard]] std::uint64_t next_deadline_ns() const noexcept;

  /// Administrative close (e.g. daemon shutdown): appends a typed error
  /// frame to `out` when the peer is mid-session and marks the session
  /// closed. No-op if already closed.
  void close(CloseReason reason, ErrorCode code, const char* detail,
             std::vector<net::Message>& out);

  [[nodiscard]] bool closed() const noexcept { return reason_ != CloseReason::kOpen; }
  [[nodiscard]] CloseReason reason() const noexcept { return reason_; }
  [[nodiscard]] bool in_session() const noexcept { return serving_; }
  [[nodiscard]] const SessionStats& stats() const noexcept { return stats_; }

 private:
  enum class BackendKind : std::uint8_t { kGraphene, kRateless };

  void handle_message(std::uint64_t now_ns, const net::Message& msg,
                      std::vector<net::Message>& out);
  void handle_hello(std::uint64_t now_ns, const net::Message& msg,
                    std::vector<net::Message>& out);
  void handle_bye(std::uint64_t now_ns, const net::Message& msg,
                  std::vector<net::Message>& out);
  void fail(CloseReason reason, ErrorCode code, const std::string& detail,
            std::vector<net::Message>& out);
  void record_session_end(std::uint64_t now_ns, bool ok, std::uint32_t rounds);

  const reconcile::ItemSet* items_;
  std::uint64_t salt_;
  DaemonLimits limits_;
  core::ProtocolConfig proto_;
  obs::Registry* obs_;

  net::FrameReader reader_;
  std::unique_ptr<reconcile::HostBackend> backend_;
  bool serving_ = false;
  BackendKind backend_kind_ = BackendKind::kGraphene;
  CloseReason reason_ = CloseReason::kOpen;

  std::uint64_t last_activity_ns_ = 0;
  std::uint64_t session_start_ns_ = 0;
  std::uint32_t session_messages_ = 0;
  std::uint32_t sessions_total_ = 0;
  SessionStats stats_;
};

}  // namespace graphene::daemon
