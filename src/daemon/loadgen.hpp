// Load-generator engine for the relay daemon.
//
// run_loadgen() opens `connections` concurrent TCP clients against a daemon,
// runs `sessions_per_conn` back-to-back reconciliation sessions on each, and
// reports throughput plus exact session-latency quantiles. Worker threads
// each own an epoll instance and a slice of the connections, so one process
// can sustain thousands of concurrent peers; tools/loadgen and
// bench/daemon_load are thin wrappers around this engine, and the session
// protocol itself is the same ClientSession the deterministic tests drive.
#pragma once

#include <cstdint>
#include <string>

#include "graphene/params.hpp"
#include "reconcile/types.hpp"

namespace graphene::daemon {

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Concurrent connections held open across the whole run.
  std::uint32_t connections = 64;
  /// Sessions each connection runs back-to-back before closing.
  std::uint32_t sessions_per_conn = 1;
  /// Worker threads; connections are split evenly across them.
  std::uint32_t workers = 4;
  /// Client set each session reconciles toward the daemon's set. Borrowed.
  const reconcile::ItemSet* items = nullptr;
  /// Backend choice, round cap, and obs registry for the clients.
  core::ProtocolConfig protocol;
  /// Whole-run deadline; connections still in flight then count as failed.
  std::uint64_t deadline_ns = 120ULL * 1000 * 1000 * 1000;
};

struct LoadgenReport {
  std::uint64_t sessions_ok = 0;
  std::uint64_t sessions_failed = 0;
  /// Connections that died outside the protocol (connect/reset/deadline).
  std::uint64_t conn_errors = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t elapsed_ns = 0;
  double sessions_per_sec = 0.0;
  /// Exact quantiles over per-session wall latency (hello sent → outcome).
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;
};

/// Runs the load. Throws std::runtime_error if options are unusable (no
/// items, zero connections). Also mirrors per-session latencies into
/// protocol.obs ("loadgen_session_ns") when a registry is attached.
LoadgenReport run_loadgen(const LoadgenOptions& opts);

}  // namespace graphene::daemon
