// The relay daemon: an epoll event loop serving reconciliation sessions
// over TCP to thousands of concurrent peers.
//
// One RelayDaemon owns one listening socket (plus any adopted pre-connected
// fds — the deterministic harness's socketpairs), one epoll instance, and
// one PeerSession per connection. All protocol work happens in PeerSession
// (session.hpp); this layer owns exactly the things a socket adds:
//
//   * connection lifecycle — accept/adopt, typed close, fd hygiene (every
//     descriptor is closed on exactly one path; the soak suite counts fds);
//   * per-peer bounded send queues — replies buffer in user space, a peer
//     draining slower than it asks first stops being read (backpressure at
//     DaemonLimits::send_queue_cap) and is closed outright at the hard cap;
//   * timeouts — the epoll wait is bounded by the earliest session deadline,
//     and a sweep closes idle/overlong sessions (obs::monotonic_ns, so the
//     fault harness drives time with ScopedFakeClock);
//   * graceful drain — a closed session's queued bytes (typically its final
//     error frame) get one drain window before the fd is closed.
//
// Threading: the loop runs either on the service thread (start()/stop()) or
// is single-stepped by a test via poll_once() — never both. stop() requests
// a halt, joins the thread, then aborts surviving connections with typed
// kShutdown closes; in-flight sessions racing a stop are the TSan stress
// suite's subject. Cross-thread entry points (adopt, stats, stop) touch only
// the mutex-guarded intake queue and atomic counters.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "daemon/session.hpp"
#include "graphene/params.hpp"
#include "reconcile/types.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace graphene::daemon {

struct DaemonOptions {
  DaemonLimits limits;
  /// Carries obs/pool/param_cache into every session; reconcile_backend is
  /// overridden per hello.
  core::ProtocolConfig protocol;
  /// Connections beyond this are accepted and immediately closed (refused).
  std::uint32_t max_connections = 8192;
  /// Base salt for per-session short-ID keys.
  std::uint64_t salt = 0x6461656d6f6eULL;
  /// Extra time a closed connection's queued bytes may take to drain.
  std::uint64_t drain_timeout_ns = 5ULL * 1000 * 1000 * 1000;
};

/// Cross-thread snapshot of the daemon's accounting.
struct DaemonStats {
  std::uint64_t conns_opened = 0;
  std::uint64_t conns_closed = 0;
  std::uint64_t conns_refused = 0;
  std::uint64_t sessions_ok = 0;
  std::uint64_t sessions_failed = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::array<std::uint64_t, kCloseReasonCount> closed_by_reason{};
};

class RelayDaemon {
 public:
  /// The daemon serves `items` (its copy) to every peer.
  explicit RelayDaemon(reconcile::ItemSet items, DaemonOptions opts = {});
  ~RelayDaemon();
  RelayDaemon(const RelayDaemon&) = delete;
  RelayDaemon& operator=(const RelayDaemon&) = delete;

  /// Binds and listens on host:port (port 0 picks an ephemeral port).
  /// Returns the bound port. Throws std::runtime_error on socket errors.
  /// Call before start().
  std::uint16_t listen(const std::string& host, std::uint16_t port);

  /// Hands a pre-connected stream socket (TCP or socketpair) to the daemon.
  /// The daemon owns the fd from here on. Thread-safe.
  void adopt(int fd);

  /// Spawns the service thread. stop() (or destruction) ends it.
  void start();

  /// Requests a halt, joins the service thread, and closes every surviving
  /// connection with a typed kShutdown abort. Idempotent. Also the
  /// single-threaded finalizer when start() was never called.
  void stop();

  /// Runs one epoll iteration: drains adoptions, dispatches I/O, sweeps
  /// deadlines. Returns true if any event or deadline made progress. Only
  /// for single-threaded use (the deterministic harness); never call while
  /// the service thread runs.
  bool poll_once(int timeout_ms);

  [[nodiscard]] std::size_t open_connections() const noexcept {
    return open_conns_.load(std::memory_order_acquire);
  }
  [[nodiscard]] DaemonStats stats() const;
  [[nodiscard]] const reconcile::ItemSet& items() const noexcept { return items_; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  struct Conn;

  void run();
  void drain_intake();
  void add_connection(int fd);
  void accept_ready();
  void handle_io(int fd, std::uint32_t events);
  void handle_readable(Conn& conn);
  void queue_messages(Conn& conn, const std::vector<net::Message>& msgs);
  bool flush_writes(Conn& conn);  ///< false: transport dead (EPIPE/reset)
  void update_interest(Conn& conn);
  void begin_drain_or_close(Conn& conn);
  void finish_conn(Conn& conn);
  void sweep_deadlines(std::uint64_t now_ns);
  [[nodiscard]] int next_timeout_ms(std::uint64_t now_ns) const;
  void wake();

  reconcile::ItemSet items_;
  DaemonOptions opts_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  // Loop-thread-only state (poll_once caller or service thread; stop() joins
  // the thread before touching it).
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  std::vector<int> dead_fds_;  ///< scratch: conns to erase after dispatch

  util::Mutex intake_mu_;
  std::vector<int> intake_ GUARDED_BY(intake_mu_);

  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};

  std::atomic<std::size_t> open_conns_{0};
  std::atomic<std::uint64_t> conns_opened_{0};
  std::atomic<std::uint64_t> conns_closed_{0};
  std::atomic<std::uint64_t> conns_refused_{0};
  std::atomic<std::uint64_t> sessions_ok_{0};
  std::atomic<std::uint64_t> sessions_failed_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::array<std::atomic<std::uint64_t>, kCloseReasonCount> closed_by_reason_{};
};

}  // namespace graphene::daemon
