#include "daemon/session.hpp"

#include <string>

#include "graphene/errors.hpp"
#include "obs/obs.hpp"
#include "util/hash.hpp"

namespace graphene::daemon {
namespace {

/// Deserializes a whole payload, rejecting trailing bytes (same contract as
/// reconcile::detail::parse_payload, restated here for the daemon frames).
template <typename Msg>
Msg parse_payload(const net::Message& msg, const char* what) {
  util::ByteReader reader(util::ByteView(msg.payload));
  Msg parsed = Msg::deserialize(reader);
  if (!reader.done()) {
    throw util::DeserializeError(std::string(what) + ": trailing bytes in payload");
  }
  return parsed;
}

const char* backend_label(core::ReconcileBackend backend) noexcept {
  return backend == core::ReconcileBackend::kRatelessIblt ? "rateless" : "graphene";
}

}  // namespace

const char* to_string(CloseReason reason) noexcept {
  switch (reason) {
    case CloseReason::kOpen: return "open";
    case CloseReason::kPeerClosed: return "peer_closed";
    case CloseReason::kPeerReset: return "peer_reset";
    case CloseReason::kMalformed: return "malformed";
    case CloseReason::kProtocolError: return "protocol_error";
    case CloseReason::kLimit: return "limit";
    case CloseReason::kIdleTimeout: return "idle_timeout";
    case CloseReason::kSessionTimeout: return "session_timeout";
    case CloseReason::kShutdown: return "shutdown";
  }
  return "unknown";
}

PeerSession::PeerSession(const reconcile::ItemSet& items, std::uint64_t salt,
                         const DaemonLimits& limits, core::ProtocolConfig proto)
    : items_(&items),
      salt_(salt),
      limits_(limits),
      proto_(proto),
      obs_(proto.obs),
      reader_(limits.max_frame_payload) {}

PeerSession::~PeerSession() = default;
PeerSession::PeerSession(PeerSession&&) noexcept = default;

bool PeerSession::on_bytes(std::uint64_t now_ns, util::ByteView data,
                           std::vector<net::Message>& out) {
  if (closed()) return false;
  last_activity_ns_ = now_ns;
  try {
    reader_.absorb(data);
    while (!closed()) {
      std::optional<net::Message> msg = reader_.next();
      if (!msg) break;
      ++stats_.messages_in;
      handle_message(now_ns, *msg, out);
    }
  } catch (const util::DeserializeError& e) {
    fail(CloseReason::kMalformed, ErrorCode::kMalformed, e.what(), out);
  }
  return !closed();
}

void PeerSession::on_eof() {
  if (closed()) return;
  // EOF between sessions with an empty frame buffer is the protocol's clean
  // goodbye; anywhere else the peer abandoned work in flight.
  reason_ = (!serving_ && !reader_.mid_frame()) ? CloseReason::kPeerClosed
                                                : CloseReason::kPeerReset;
}

bool PeerSession::check_deadlines(std::uint64_t now_ns) {
  if (closed()) return false;
  if (last_activity_ns_ == 0) last_activity_ns_ = now_ns;  // first sweep
  if (serving_ && now_ns - session_start_ns_ >= limits_.session_timeout_ns) {
    reason_ = CloseReason::kSessionTimeout;
    return false;
  }
  if (now_ns - last_activity_ns_ >= limits_.idle_timeout_ns) {
    reason_ = CloseReason::kIdleTimeout;
    return false;
  }
  return true;
}

std::uint64_t PeerSession::next_deadline_ns() const noexcept {
  if (closed()) return UINT64_MAX;
  std::uint64_t deadline = UINT64_MAX;
  if (last_activity_ns_ != 0) deadline = last_activity_ns_ + limits_.idle_timeout_ns;
  if (serving_) {
    const std::uint64_t session_end = session_start_ns_ + limits_.session_timeout_ns;
    if (session_end < deadline) deadline = session_end;
  }
  return deadline;
}

void PeerSession::close(CloseReason reason, ErrorCode code, const char* detail,
                        std::vector<net::Message>& out) {
  if (closed()) return;
  if (serving_) {
    ErrorMsg err;
    err.code = code;
    err.detail = detail;
    out.push_back({net::MessageType::kDaemonError, err.serialize()});
    ++stats_.messages_out;
  }
  reason_ = reason;
}

void PeerSession::handle_message(std::uint64_t now_ns, const net::Message& msg,
                                 std::vector<net::Message>& out) {
  switch (msg.type) {
    case net::MessageType::kDaemonHello:
      handle_hello(now_ns, msg, out);
      return;
    case net::MessageType::kDaemonBye:
      handle_bye(now_ns, msg, out);
      return;
    default: break;
  }

  if (!serving_) {
    fail(CloseReason::kProtocolError, ErrorCode::kProtocol,
         std::string("daemon: \"") + std::string(net::command_name(msg.type)) +
             "\" before hello",
         out);
    return;
  }
  if (++session_messages_ > limits_.session_msg_cap) {
    fail(CloseReason::kLimit, ErrorCode::kLimit,
         "daemon: session message cap exceeded", out);
    return;
  }
  try {
    const reconcile::WireMsg request{msg.type, msg.payload};
    const reconcile::WireMsg response = backend_->serve_wire(request);
    out.push_back(response.to_message());
    ++stats_.messages_out;
  } catch (const core::ProtocolError& e) {
    fail(CloseReason::kProtocolError, ErrorCode::kProtocol, e.what(), out);
  } catch (const util::DeserializeError& e) {
    fail(CloseReason::kMalformed, ErrorCode::kMalformed, e.what(), out);
  }
}

void PeerSession::handle_hello(std::uint64_t now_ns, const net::Message& msg,
                               std::vector<net::Message>& out) {
  if (serving_) {
    fail(CloseReason::kProtocolError, ErrorCode::kProtocol,
         "daemon: hello inside an open session", out);
    return;
  }
  const HelloMsg hello = parse_payload<HelloMsg>(msg, "daemon::HelloMsg");
  if (hello.version != kDaemonProtocolVersion) {
    fail(CloseReason::kProtocolError, ErrorCode::kUnsupported,
         "daemon: unsupported protocol version " + std::to_string(hello.version), out);
    return;
  }
  core::ProtocolConfig cfg = proto_;
  cfg.reconcile_backend = hello.backend == 1 ? core::ReconcileBackend::kRatelessIblt
                                             : core::ReconcileBackend::kGraphene;
  // Fresh short-ID keying per session: a peer that grinds collisions against
  // one offer learns nothing about the next.
  const std::uint64_t session_salt =
      util::mix64(salt_ ^ (0x9e3779b97f4a7c15ULL * (sessions_total_ + 1)));
  try {
    backend_ = reconcile::make_host_backend(*items_, session_salt, cfg);
    const reconcile::WireMsg opening = backend_->open(hello.item_count);
    serving_ = true;
    backend_kind_ = hello.backend == 1 ? BackendKind::kRateless : BackendKind::kGraphene;
    session_start_ns_ = now_ns;
    session_messages_ = 0;
    out.push_back(opening.to_message());
    ++stats_.messages_out;
  } catch (const core::ProtocolError& e) {
    backend_.reset();
    fail(CloseReason::kProtocolError, ErrorCode::kProtocol, e.what(), out);
  }
}

void PeerSession::handle_bye(std::uint64_t now_ns, const net::Message& msg,
                             std::vector<net::Message>& out) {
  if (!serving_) {
    fail(CloseReason::kProtocolError, ErrorCode::kProtocol,
         "daemon: bye outside a session", out);
    return;
  }
  const ByeMsg bye = parse_payload<ByeMsg>(msg, "daemon::ByeMsg");
  record_session_end(now_ns, bye.ok == 1, bye.rounds);
  serving_ = false;
  backend_.reset();
  ++sessions_total_;
  if (limits_.conn_session_cap != 0 && sessions_total_ >= limits_.conn_session_cap) {
    // Rotation, not misbehavior — but the reason is still typed so the soak
    // accounting can tell rotations from faults.
    reason_ = CloseReason::kLimit;
  }
}

void PeerSession::fail(CloseReason reason, ErrorCode code, const std::string& detail,
                       std::vector<net::Message>& out) {
  if (closed()) return;
  ErrorMsg err;
  err.code = code;
  err.detail = detail;
  out.push_back({net::MessageType::kDaemonError, err.serialize()});
  ++stats_.messages_out;
  reason_ = reason;
  if (obs::Registry* reg = obs::enabled(obs_)) {
    reg->counter("daemon_session_errors_total", {{"code", to_string(code)}}).inc();
  }
}

void PeerSession::record_session_end(std::uint64_t now_ns, bool ok,
                                     std::uint32_t rounds) {
  if (ok) {
    ++stats_.sessions_ok;
  } else {
    ++stats_.sessions_failed;
  }
  if (obs::Registry* reg = obs::enabled(obs_)) {
    const char* backend = backend_kind_ == BackendKind::kRateless
                              ? backend_label(core::ReconcileBackend::kRatelessIblt)
                              : backend_label(core::ReconcileBackend::kGraphene);
    const obs::Labels labels = {{"backend", backend}, {"ok", ok ? "1" : "0"}};
    reg->histogram("daemon_session_ns", labels).observe(now_ns - session_start_ns_);
    reg->counter("daemon_sessions_total", labels).inc();
    reg->histogram("daemon_session_rounds", {{"backend", backend}}).observe(rounds);
  }
}

}  // namespace graphene::daemon
