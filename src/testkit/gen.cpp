#include "testkit/gen.hpp"

#include <algorithm>
#include <cmath>

#include "chain/transaction.hpp"

namespace graphene::testkit {

namespace {

/// Log-uniform integer in [lo, hi]: protocol behavior changes with the
/// order of magnitude of n, not its value, so uniform sampling would spend
/// almost every trial on large blocks.
std::uint64_t log_uniform(util::Rng& rng, std::uint64_t lo, std::uint64_t hi) {
  lo = std::max<std::uint64_t>(lo, 1);
  if (hi <= lo) return lo;
  const double llo = std::log(static_cast<double>(lo));
  const double lhi = std::log(static_cast<double>(hi) + 1.0);
  const auto v = static_cast<std::uint64_t>(std::exp(llo + (lhi - llo) * rng.uniform()));
  return std::clamp(v, lo, hi);
}

}  // namespace

GenCase gen_case(util::Rng& rng, const ScenarioDims& dims) {
  GenCase c;
  c.spec.block_txns = log_uniform(rng, dims.min_block_txns, dims.max_block_txns);
  const double mult = rng.uniform() * dims.max_extra_multiple;
  c.spec.extra_txns =
      static_cast<std::uint64_t>(mult * static_cast<double>(c.spec.block_txns));
  const double span = dims.max_fraction - dims.min_fraction;
  c.spec.block_fraction_in_mempool = dims.min_fraction + span * rng.uniform();
  if (dims.max_sender_extra > 0) {
    c.spec.sender_extra_txns = rng.below(dims.max_sender_extra + 1);
  }
  c.salt = rng.next();
  c.scenario_seed = rng.next();
  return c;
}

chain::Scenario build_scenario(const GenCase& c) {
  util::Rng rng(c.scenario_seed);
  return chain::make_scenario(c.spec, rng);
}

std::vector<GenCase> shrink_case(const GenCase& c) {
  std::vector<GenCase> out;
  const auto push = [&](chain::ScenarioSpec spec) {
    GenCase s = c;
    s.spec = spec;
    out.push_back(s);
  };
  if (c.spec.block_txns > 1) {
    chain::ScenarioSpec s = c.spec;
    s.block_txns /= 2;
    push(s);
  }
  if (c.spec.extra_txns > 0) {
    chain::ScenarioSpec s = c.spec;
    s.extra_txns /= 2;
    push(s);
    s = c.spec;
    s.extra_txns = 0;
    push(s);
  }
  if (c.spec.block_fraction_in_mempool < 1.0) {
    chain::ScenarioSpec s = c.spec;
    s.block_fraction_in_mempool =
        std::min(1.0, 0.5 * (c.spec.block_fraction_in_mempool + 1.0));
    push(s);
  }
  if (c.spec.sender_extra_txns > 0) {
    chain::ScenarioSpec s = c.spec;
    s.sender_extra_txns = 0;
    push(s);
  }
  return out;
}

std::string describe_case(const GenCase& c) {
  std::string s = "{n=" + std::to_string(c.spec.block_txns) +
                  " extra=" + std::to_string(c.spec.extra_txns) +
                  " fraction=" + std::to_string(c.spec.block_fraction_in_mempool);
  if (c.spec.sender_extra_txns > 0) {
    s += " sender_extra=" + std::to_string(c.spec.sender_extra_txns);
  }
  s += " salt=" + std::to_string(c.salt) +
       " scenario_seed=" + std::to_string(c.scenario_seed) + "}";
  return s;
}

chain::Transaction gen_transaction(util::Rng& rng, std::uint32_t min_size,
                                   std::uint32_t max_size) {
  chain::Transaction tx = chain::make_random_transaction(rng);
  if (max_size > min_size) {
    tx.size_bytes =
        min_size + static_cast<std::uint32_t>(rng.below(max_size - min_size + 1));
  } else {
    tx.size_bytes = min_size;
  }
  tx.fee_per_kb = rng.below(10'000);
  return tx;
}

util::Bytes gen_wire_bytes(util::Rng& rng, std::size_t max_len, const util::Bytes* base) {
  if (base != nullptr && !base->empty() && rng.chance(0.75)) {
    util::Bytes out = *base;
    switch (rng.below(3)) {
      case 0:  // truncate
        out.resize(rng.below(out.size() + 1));
        break;
      case 1: {  // flip 1–4 random bits
        const std::uint64_t flips = 1 + rng.below(4);
        for (std::uint64_t i = 0; i < flips; ++i) {
          out[rng.below(out.size())] ^= static_cast<std::uint8_t>(1u << rng.below(8));
        }
        break;
      }
      default: {  // splice random bytes over a random window
        const std::size_t at = rng.below(out.size());
        const std::size_t len = std::min<std::size_t>(out.size() - at, 1 + rng.below(16));
        for (std::size_t i = 0; i < len; ++i) {
          out[at + i] = static_cast<std::uint8_t>(rng.next());
        }
        break;
      }
    }
    if (out.size() > max_len) out.resize(max_len);
    return out;
  }
  util::Bytes out(rng.below(max_len + 1));
  rng.fill(out);
  return out;
}

}  // namespace graphene::testkit
