#include "testkit/stat_gate.hpp"

#include <cstdlib>

namespace graphene::testkit {

std::uint64_t stress_scale() {
  const char* s = std::getenv("GRAPHENE_STRESS");
  if (s == nullptr || *s == '\0') return 1;
  const long v = std::strtol(s, nullptr, 10);
  return v > 1 ? static_cast<std::uint64_t>(v) : 10;
}

GateResult StatGate::run(
    const std::function<bool(util::Rng&, std::uint64_t)>& trial) const {
  GateResult r;
  r.trials = spec_.trials * stress_scale();
  const util::Rng root(spec_.seed);
  constexpr std::size_t kMaxRecordedFailures = 16;
  for (std::uint64_t i = 0; i < r.trials; ++i) {
    util::Rng rng = root.split(i);
    if (trial(rng, i)) {
      ++r.successes;
    } else if (r.failing_trials.size() < kMaxRecordedFailures) {
      r.failing_trials.push_back(i);
    }
  }
  r.observed = static_cast<double>(r.successes) / static_cast<double>(r.trials);
  r.cp_upper = util::clopper_pearson_upper(r.successes, r.trials, spec_.confidence);
  r.cp_lower = util::clopper_pearson_lower(r.successes, r.trials, spec_.confidence);
  r.passed = r.cp_upper >= spec_.min_rate;

  std::string& m = r.message;
  m = "StatGate[" + spec_.name + "] " + (r.passed ? "PASS" : "FAIL") + ": " +
      std::to_string(r.successes) + "/" + std::to_string(r.trials) +
      " = " + std::to_string(r.observed) + ", CP" +
      std::to_string(spec_.confidence) + " interval [" + std::to_string(r.cp_lower) +
      ", " + std::to_string(r.cp_upper) + "], required rate >= " +
      std::to_string(spec_.min_rate) + "\n  reproduce: seed=" +
      std::to_string(spec_.seed) + " (trial i runs on Rng(seed).split(i))";
  if (!r.failing_trials.empty()) {
    m += "\n  failing trials:";
    for (const std::uint64_t i : r.failing_trials) {
      m += ' ';
      m += std::to_string(i);
    }
  }
  return r;
}

}  // namespace graphene::testkit
