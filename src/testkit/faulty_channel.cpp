#include "testkit/faulty_channel.hpp"

#include <utility>

namespace graphene::testkit {

std::vector<util::Bytes> FaultyChannel::transmit(net::Direction dir,
                                                 net::MessageType type,
                                                 util::Bytes payload) {
  ++counts_.sent;
  if (inner_ != nullptr) {
    inner_->send(dir, net::Message{type, payload});
  }

  std::vector<util::Bytes> out;
  const auto d = static_cast<std::size_t>(dir);
  // Messages held back by earlier transmits arrive in this round, after the
  // current message — taken out first so a hold decided below waits for the
  // NEXT transmit instead of being delivered immediately.
  std::vector<util::Bytes> arriving_late = std::move(held_[d]);
  held_[d].clear();
  if (rng_.chance(spec_.drop)) {
    ++counts_.dropped;
  } else {
    if (rng_.chance(spec_.truncate)) {
      ++counts_.truncated;
      payload.resize(rng_.below(payload.size() + 1));
    }
    if (rng_.chance(spec_.bitflip) && !payload.empty()) {
      ++counts_.bitflipped;
      const std::uint64_t flips = 1 + rng_.below(8);
      for (std::uint64_t i = 0; i < flips; ++i) {
        payload[rng_.below(payload.size())] ^=
            static_cast<std::uint8_t>(1u << rng_.below(8));
      }
    }
    const bool dup = rng_.chance(spec_.duplicate);
    if (dup) ++counts_.duplicated;
    if (rng_.chance(spec_.reorder)) {
      // Held back: this message arrives after the NEXT one in `dir` (or at
      // flush). A duplicate of a held message is held with it.
      ++counts_.reordered;
      held_[d].push_back(payload);
      if (dup) held_[d].push_back(std::move(payload));
    } else {
      out.push_back(payload);
      if (dup) out.push_back(std::move(payload));
    }
  }

  for (util::Bytes& late : arriving_late) out.push_back(std::move(late));
  counts_.delivered += out.size();
  return out;
}

std::vector<util::Bytes> FaultyChannel::flush(net::Direction dir) {
  const auto d = static_cast<std::size_t>(dir);
  std::vector<util::Bytes> out = std::move(held_[d]);
  held_[d].clear();
  counts_.delivered += out.size();
  return out;
}

}  // namespace graphene::testkit
