#include "testkit/faulty_channel.hpp"

#include <string>
#include <utility>

#include "obs/obs.hpp"

namespace graphene::testkit {

void FaultyChannel::note_delivery(net::Direction dir, net::MessageType type,
                                  const std::vector<util::Bytes>& out,
                                  const FaultCounts& before) {
  obs::Registry* reg = obs::enabled(obs_);
  if (reg == nullptr) return;
  reg->counter("graphene_fault_transmits_total").inc();
  reg->counter("graphene_fault_delivered_total").inc(out.size());
  reg->counter("graphene_fault_dropped_total").inc(counts_.dropped - before.dropped);
  reg->counter("graphene_fault_duplicated_total")
      .inc(counts_.duplicated - before.duplicated);
  reg->counter("graphene_fault_reordered_total").inc(counts_.reordered - before.reordered);
  reg->counter("graphene_fault_truncated_total").inc(counts_.truncated - before.truncated);
  reg->counter("graphene_fault_bitflipped_total")
      .inc(counts_.bitflipped - before.bitflipped);
  obs::FlightRecorder* fr = obs::flight(reg);
  if (fr == nullptr) return;
  for (const util::Bytes& buf : out) {
    obs::FlightEvent e;
    e.kind = obs::FlightEventKind::kNote;
    e.label = "link";
    e.attrs = {{"dir", static_cast<double>(static_cast<int>(dir))},
               {"type", static_cast<double>(static_cast<int>(type))},
               {"bytes", static_cast<double>(buf.size())},
               {"faulted", counts_.faults() > before.faults() ? 1.0 : 0.0}};
    if (fr->wire_capture()) e.wire = buf;
    fr->record(std::move(e));
  }
}

std::vector<util::Bytes> FaultyChannel::transmit(net::Direction dir,
                                                 net::MessageType type,
                                                 util::Bytes payload) {
  const util::MutexLock lock(mu_);
  const FaultCounts before = counts_;
  ++counts_.sent;
  if (inner_ != nullptr) {
    inner_->send(dir, net::Message{type, payload});
  }

  std::vector<util::Bytes> out;
  const auto d = static_cast<std::size_t>(dir);
  // Messages held back by earlier transmits arrive in this round, after the
  // current message — taken out first so a hold decided below waits for the
  // NEXT transmit instead of being delivered immediately.
  std::vector<util::Bytes> arriving_late = std::move(held_[d]);
  held_[d].clear();
  if (rng_.chance(spec_.drop)) {
    ++counts_.dropped;
  } else {
    if (rng_.chance(spec_.truncate)) {
      ++counts_.truncated;
      payload.resize(rng_.below(payload.size() + 1));
    }
    if (rng_.chance(spec_.bitflip) && !payload.empty()) {
      ++counts_.bitflipped;
      const std::uint64_t flips = 1 + rng_.below(8);
      for (std::uint64_t i = 0; i < flips; ++i) {
        payload[rng_.below(payload.size())] ^=
            static_cast<std::uint8_t>(1u << rng_.below(8));
      }
    }
    const bool dup = rng_.chance(spec_.duplicate);
    if (dup) ++counts_.duplicated;
    if (rng_.chance(spec_.reorder)) {
      // Held back: this message arrives after the NEXT one in `dir` (or at
      // flush). A duplicate of a held message is held with it.
      ++counts_.reordered;
      held_[d].push_back(payload);
      if (dup) held_[d].push_back(std::move(payload));
    } else {
      out.push_back(payload);
      if (dup) out.push_back(std::move(payload));
    }
  }

  for (util::Bytes& late : arriving_late) out.push_back(std::move(late));
  counts_.delivered += out.size();
  note_delivery(dir, type, out, before);
  return out;
}

std::vector<util::Bytes> FaultyChannel::flush(net::Direction dir) {
  const util::MutexLock lock(mu_);
  const FaultCounts before = counts_;
  const auto d = static_cast<std::size_t>(dir);
  std::vector<util::Bytes> out = std::move(held_[d]);
  held_[d].clear();
  counts_.delivered += out.size();
  note_delivery(dir, net::MessageType::kInv, out, before);
  return out;
}

}  // namespace graphene::testkit
