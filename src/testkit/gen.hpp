// Seeded, shrinking generators for property-based protocol tests.
//
// Every generator is a pure function of a util::Rng, and every property
// trial derives its Rng from (suite seed, trial index) via util::Rng::split —
// so a failure anywhere in a statistical sweep reproduces from the two
// numbers printed in the failure message, on any platform.
//
// Shrinking is domain-aware rather than byte-level: a failing scenario spec
// shrinks toward fewer block transactions, fewer extras, and full overlap
// (the trivially-decodable corner), so the counterexample a gate prints is
// close to minimal in the (m, n, x, y) lattice the paper's theorems are
// stated over.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/workload.hpp"
#include "util/random.hpp"

namespace graphene::testkit {

/// Bounds of the (m, n, x, y) lattice a property sweeps. n is the block
/// size; extras y = m − x are sampled as a multiple of n; overlap x is
/// sampled as a fraction of n.
struct ScenarioDims {
  std::uint64_t min_block_txns = 1;
  std::uint64_t max_block_txns = 2000;
  /// Receiver extras as a multiple of the block size: y ∈ [0, max_mult·n].
  double max_extra_multiple = 5.0;
  /// Overlap fraction x/n range.
  double min_fraction = 0.0;
  double max_fraction = 1.0;
  /// Extras in the sender's own pool (kept small; it only affects serve()).
  std::uint64_t max_sender_extra = 0;
};

/// One generated protocol instance: the spec that shaped it plus the salt
/// the sender keys short IDs with. The Scenario itself is rebuilt on demand
/// (deterministically) from (spec, seed) so shrink candidates stay cheap.
struct GenCase {
  chain::ScenarioSpec spec{};
  std::uint64_t salt = 0;
  /// Stream seed this case's scenario materializes from.
  std::uint64_t scenario_seed = 0;
};

/// Samples a spec uniformly over `dims` (log-uniform in block size so small
/// and large blocks are both exercised), plus a salt and scenario stream.
[[nodiscard]] GenCase gen_case(util::Rng& rng, const ScenarioDims& dims);

/// Materializes the deterministic scenario for a generated case.
[[nodiscard]] chain::Scenario build_scenario(const GenCase& c);

/// Shrink candidates for a failing case, ordered most-aggressive first:
/// halve the block, halve the extras, push the overlap fraction toward 1,
/// drop sender extras. Every candidate is strictly simpler, so the greedy
/// shrink loop terminates.
[[nodiscard]] std::vector<GenCase> shrink_case(const GenCase& c);

/// Human-readable one-liner for gate failure messages.
[[nodiscard]] std::string describe_case(const GenCase& c);

/// Random transaction with bounded synthetic size/fee — the per-item
/// generator behind gen_case, exposed for tests that build sets directly.
[[nodiscard]] chain::Transaction gen_transaction(util::Rng& rng,
                                                 std::uint32_t min_size = 100,
                                                 std::uint32_t max_size = 1000);

/// Arbitrary-but-bounded wire bytes for deserializer properties: length in
/// [0, max_len], contents either pure noise or a mutated copy of `base`
/// (truncate / flip / splice) when one is given. Mutating real encodings
/// reaches far deeper into deserializers than noise alone.
[[nodiscard]] util::Bytes gen_wire_bytes(util::Rng& rng, std::size_t max_len,
                                         const util::Bytes* base = nullptr);

}  // namespace graphene::testkit
