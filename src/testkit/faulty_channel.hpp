// Fault-injecting wrapper over net::Channel for protocol robustness tests.
//
// A real peer link drops, truncates, duplicates, reorders, and corrupts
// messages; the protocol engines must always terminate with either a decoded
// block or a typed error — never a hang, a crash, or a silently wrong block.
// FaultyChannel makes that property testable: every transmit rolls a seeded
// fault schedule and returns the byte buffers the far side actually gets
// (possibly none, two, stale, shortened, or bit-flipped ones), while the
// wrapped net::Channel keeps exact accounting of what the sender put on the
// wire. The schedule is a pure function of FaultSpec::seed, so any failing
// interleaving replays from the seed printed by the failing gate.
#pragma once

#include <cstdint>
#include <vector>

#include "net/channel.hpp"
#include "util/random.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace graphene::obs {
class Registry;
}  // namespace graphene::obs

namespace graphene::testkit {

/// Independent per-message fault probabilities. Faults compose: a message
/// can be truncated AND duplicated in one transmit; drop wins over the rest.
struct FaultSpec {
  double drop = 0.0;       ///< message vanishes
  double duplicate = 0.0;  ///< delivered twice
  double reorder = 0.0;    ///< held back; arrives after the next message
  double truncate = 0.0;   ///< payload cut at a random point
  double bitflip = 0.0;    ///< 1–8 random bits flipped
  std::uint64_t seed = 1;  ///< fault schedule stream
};

struct FaultCounts {
  std::uint64_t sent = 0;       ///< transmit() calls
  std::uint64_t delivered = 0;  ///< buffers handed to the far side
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t truncated = 0;
  std::uint64_t bitflipped = 0;
  [[nodiscard]] std::uint64_t faults() const noexcept {
    return dropped + duplicated + reordered + truncated + bitflipped;
  }
};

class FaultyChannel {
 public:
  /// `inner` (optional, not owned) records every original send for byte
  /// accounting; faults never alter what it logs — they model the link, not
  /// the sender.
  explicit FaultyChannel(FaultSpec spec, net::Channel* inner = nullptr)
      : spec_(spec), rng_(spec.seed), inner_(inner) {}

  /// Sends one message through the faulty link. Returns every byte buffer
  /// delivered to the far side, in arrival order (empty on drop; a held-back
  /// reordered message from an earlier transmit may arrive appended here).
  /// Thread-safe: the fault schedule, counters, and hold-back queues are
  /// serialized under one mutex, so concurrent sessions can share a link
  /// (the schedule stays a pure function of seed and transmit order).
  std::vector<util::Bytes> transmit(net::Direction dir, net::MessageType type,
                                    util::Bytes payload) EXCLUDES(mu_);

  /// Serializes `msg` and transmits it.
  template <typename Msg>
  std::vector<util::Bytes> transmit_msg(net::Direction dir, net::MessageType type,
                                        const Msg& msg) {
    return transmit(dir, type, msg.serialize());
  }

  /// Delivers any still-held (reordered) messages for `dir` — the "link went
  /// quiet" flush that keeps a session from waiting forever on a message the
  /// schedule held back.
  std::vector<util::Bytes> flush(net::Direction dir) EXCLUDES(mu_);

  /// Snapshot of the fault accounting (by value: the counters mutate under
  /// mu_ on every transmit, so a reference could tear mid-read).
  [[nodiscard]] FaultCounts counts() const EXCLUDES(mu_) {
    const util::MutexLock lock(mu_);
    return counts_;
  }
  [[nodiscard]] net::Channel* inner() const noexcept { return inner_; }

  /// Attaches a telemetry registry (not owned). Each transmit/flush then
  /// bumps graphene_fault_* counters and — when the registry's flight
  /// recorder is on — records a kNote "link" event per delivered buffer, with
  /// the delivered bytes attached under wire capture so a capture replayed
  /// through tools/replay_capture sees exactly what the far side saw.
  void attach_obs(obs::Registry* reg) noexcept { obs_ = reg; }
  [[nodiscard]] obs::Registry* obs() const noexcept { return obs_; }

 private:
  void note_delivery(net::Direction dir, net::MessageType type,
                     const std::vector<util::Bytes>& out, const FaultCounts& before)
      REQUIRES(mu_);

  FaultSpec spec_;
  mutable util::Mutex mu_;
  util::Rng rng_ GUARDED_BY(mu_);
  FaultCounts counts_ GUARDED_BY(mu_);
  std::vector<util::Bytes> held_[2] GUARDED_BY(mu_);
  // Set-before-share pointers (like spec_): attach_obs/construction happen
  // before the link is handed to concurrent sessions.
  net::Channel* inner_;
  obs::Registry* obs_ = nullptr;
};

}  // namespace graphene::testkit
