// Statistical assertion gate for probabilistic guarantees.
//
// Graphene's theorems promise rates, not outcomes: Theorem 1 promises IBLT
// decode success with probability ≥ β, Theorems 2/3 promise bound violations
// with probability ≤ 1−β. A point-example test cannot pin a rate — a
// regression from 239/240 to 0.9 still passes most single runs. A StatGate
// runs N seeded trials and converts (successes, N) into a verdict with the
// exact one-sided Clopper–Pearson interval:
//
//   FAIL  iff  clopper_pearson_upper(successes, N, confidence) < min_rate
//
// i.e. the gate fails only when the data is statistically incompatible with
// the promised rate, so the false-alarm probability of a healthy build is at
// most 1 − confidence per gate, while a real regression of a few percent is
// caught with near certainty at default trial counts.
//
// Reproduction: trial i runs on Rng(seed).split(i). A failed gate prints the
// suite seed, every failing trial index, and (when the trial exposes its
// generated case) the greedily shrunk counterexample.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/random.hpp"
#include "util/stats.hpp"

namespace graphene::testkit {

/// Trial-count scale factor from the environment: GRAPHENE_STRESS multiplies
/// defaults by 10 (or by its numeric value when > 1); GRAPHENE_FAST leaves
/// gates alone — statistical power is the point, so gates never shrink.
[[nodiscard]] std::uint64_t stress_scale();

struct StatGateSpec {
  std::string name;           ///< printed in the verdict, e.g. "thm1_decode"
  std::uint64_t trials = 200; ///< base count, multiplied by stress_scale()
  double min_rate = 0.5;      ///< promised lower bound on the success rate
  double confidence = 0.999;  ///< one-sided CP confidence of the verdict
  std::uint64_t seed = 0x97a9e5ULL;  ///< suite seed (always printed)
};

struct GateResult {
  bool passed = false;
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;
  double observed = 0.0;   ///< successes / trials
  double cp_upper = 1.0;   ///< one-sided Clopper–Pearson upper bound
  double cp_lower = 0.0;   ///< one-sided lower bound (diagnostic only)
  /// Failure indices (capped); trial i reproduces from Rng(seed).split(i).
  std::vector<std::uint64_t> failing_trials;
  /// Full human-readable verdict: rates, interval, seed, counterexample.
  std::string message;
};

class StatGate {
 public:
  explicit StatGate(StatGateSpec spec) : spec_(std::move(spec)) {}

  /// Runs `trial(rng, index)` spec.trials × stress_scale() times; trial
  /// returns true on success. The verdict is assembled afterwards.
  GateResult run(const std::function<bool(util::Rng&, std::uint64_t)>& trial) const;

  /// Property form with shrinking: `generate(rng)` draws a case, `check`
  /// decides it (it receives a child rng for any extra randomness), `shrink`
  /// proposes simpler cases and `describe` renders one. On gate failure the
  /// first failing case is re-checked through the shrink lattice and the
  /// smallest still-failing case lands in the message.
  template <typename Case>
  GateResult run_cases(
      const std::function<Case(util::Rng&)>& generate,
      const std::function<bool(const Case&, util::Rng&)>& check,
      const std::function<std::vector<Case>(const Case&)>& shrink,
      const std::function<std::string(const Case&)>& describe) const {
    Case first_failure{};
    bool have_failure = false;
    GateResult r = run([&](util::Rng& rng, std::uint64_t) {
      Case c = generate(rng);
      util::Rng check_rng = rng.split(0x5eed);
      const bool ok = check(c, check_rng);
      if (!ok && !have_failure) {
        first_failure = c;
        have_failure = true;
      }
      return ok;
    });
    if (!r.passed && have_failure) {
      // Greedy shrink: accept the first simpler candidate that still fails;
      // each accepted step strictly shrinks the case, so this terminates.
      Case current = first_failure;
      bool progressed = true;
      while (progressed) {
        progressed = false;
        for (const Case& cand : shrink(current)) {
          util::Rng cand_rng = util::Rng(spec_.seed).split(0x5eed);
          if (!check(cand, cand_rng)) {
            current = cand;
            progressed = true;
            break;
          }
        }
      }
      r.message += "\n  shrunk counterexample: " + describe(current) +
                   "\n  original failure:      " + describe(first_failure);
    }
    return r;
  }

  [[nodiscard]] const StatGateSpec& spec() const noexcept { return spec_; }

 private:
  StatGateSpec spec_;
};

}  // namespace graphene::testkit

/// GTest glue: assert a gate result, printing the full verdict on failure.
#define GRAPHENE_EXPECT_GATE(result)                      \
  EXPECT_TRUE((result).passed) << (result).message
#define GRAPHENE_ASSERT_GATE(result)                      \
  ASSERT_TRUE((result).passed) << (result).message
