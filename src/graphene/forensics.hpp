// Decode-failure forensics: self-contained, replayable captures of a failed
// protocol session.
//
// When a relay ends in anything but kDecoded — an IBLT that kept its 2-core,
// a ProtocolError, or a FaultyChannel-induced abort — the interesting state
// is spread across three places: the receiver's mempool, the chosen
// parameters, and the exact wire bytes that crossed the link. A
// ForensicCapture bundles all three (plus the flight-recorder event log)
// into one JSON document, and replay_capture() re-executes it against a
// fresh Sender/ReceiveSession, byte-comparing every message the replayed
// session produces against the recording. Replay is deterministic because
// every protocol structure is insertion-order independent: Bloom filters OR
// bits and IBLT cells XOR, so a mempool rebuilt in any iteration order
// yields identical filters, identical IBLTs, and identical wire bytes.
//
// Two replay modes, chosen by what the capture carries:
//   * receiver-only (the default): received messages are fed from the
//     recorded wire bytes; messages the receiver *sent* are regenerated and
//     byte-compared. Works without the sender's block.
//   * full-loop (attach_block()): a Sender is reconstructed from the block
//     snapshot and every sender-side message is regenerated and compared
//     too, closing the loop end to end.
//
// Captures are dumped automatically by the engines when the environment
// variable GRAPHENE_CAPTURE_DIR names a directory (see maybe_dump_capture),
// and replayed with `tools/replay_capture <file.json>`.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "chain/block.hpp"
#include "chain/mempool.hpp"
#include "graphene/errors.hpp"
#include "graphene/params.hpp"
#include "obs/flight_recorder.hpp"

namespace graphene::core {

/// One failed session, snapshotted at the moment of failure. Field-for-field
/// JSON schema documented in docs/OBSERVABILITY.md.
struct ForensicCapture {
  static constexpr std::string_view kSchema = "graphene.capture.v1";

  /// "decode_failure" | "protocol_error" | "channel_abort".
  std::string kind;
  /// Protocol stage at failure ("p1_peel", "build_request", ...).
  std::string stage;
  /// Freeform context from whoever built the capture.
  std::string note;

  std::uint64_t salt = 0;      ///< short-ID salt of the relayed block
  std::uint64_t claimed_m = 0; ///< receiver mempool count given to encode()

  // ProtocolConfig scalars (the runtime pointers — obs/pool/param_cache —
  // are environment, not protocol state, and are not captured).
  double beta = 239.0 / 240.0;
  std::uint32_t fail_denom = 240;
  bool keyed_short_ids = true;
  double near_equal_fpr = 0.1;
  bool enable_pingpong = true;
  std::uint8_t bloom_strategy = 0;

  /// Receiver mempool snapshot (order-irrelevant; see header comment).
  std::vector<chain::Transaction> mempool;

  /// Optional sender-side block for full-loop replay.
  bool has_block = false;
  chain::BlockHeader block_header{};
  std::vector<chain::Transaction> block_txns;

  /// ErrorContext of the ProtocolError, when kind == "protocol_error".
  bool has_error = false;
  ErrorContext error{};

  /// The flight-recorder timeline, including the offending wire bytes.
  std::vector<obs::FlightEvent> events;

  /// Rebuilds the ProtocolConfig the session ran under (pointers null).
  [[nodiscard]] ProtocolConfig config() const;

  [[nodiscard]] std::string to_json() const;
  /// Strict parse; throws obs::json::ParseError or util::DeserializeError.
  [[nodiscard]] static ForensicCapture from_json(std::string_view text);
};

/// Builds a capture from the live session environment: copies the mempool,
/// the config scalars, and — when `cfg.obs` is attached — the flight
/// recorder's current event log.
[[nodiscard]] ForensicCapture make_capture(std::string kind, std::string stage,
                                           const chain::Mempool& mempool,
                                           const ProtocolConfig& cfg,
                                           std::uint64_t salt);

/// Attaches the sender's block, enabling full-loop replay.
void attach_block(ForensicCapture& cap, const chain::Block& block,
                  std::uint64_t claimed_m);

/// Writes the capture into `dir` with a process-unique file name; returns
/// the full path. Throws std::runtime_error when the file cannot be written.
std::string dump_capture(const ForensicCapture& cap, const std::string& dir);

/// True when $GRAPHENE_CAPTURE_DIR is set and the per-process dump cap has
/// not been reached — check this BEFORE building a capture, because
/// make_capture() copies the whole mempool.
[[nodiscard]] bool capture_enabled();

/// Env-gated dump: writes to $GRAPHENE_CAPTURE_DIR when set, subject to a
/// per-process cap of $GRAPHENE_CAPTURE_LIMIT dumps (default 16 — a
/// statistical gate intentionally driving thousands of decode failures must
/// not fill the disk). Returns the path when a file was written, nullopt
/// when capturing is off, the cap is reached, or the write failed (forensics
/// must never take down the protocol path).
std::optional<std::string> maybe_dump_capture(const ForensicCapture& cap);

/// Verdict of one replay.
struct ReplayReport {
  bool ran = false;            ///< at least one recorded event was re-executed
  bool outcome_match = true;   ///< every decode outcome / error matched
  bool bytes_match = true;     ///< every regenerated message matched byte-for-byte
  std::string recorded_outcome;
  std::string replayed_outcome;
  std::vector<std::string> notes;

  [[nodiscard]] bool ok() const noexcept { return ran && outcome_match && bytes_match; }
};

/// Re-executes the capture against a fresh ReceiveSession (and Sender, when
/// the capture carries the block). Never throws on protocol-level failures —
/// a ProtocolError during replay is an *expected* part of reproducing a
/// protocol_error capture and is matched against the recorded one.
[[nodiscard]] ReplayReport replay_capture(const ForensicCapture& cap);

}  // namespace graphene::core
