#include "graphene/sender.hpp"

#include <algorithm>
#include <cmath>

#include "bloom/bloom_math.hpp"
#include "util/arena.hpp"
#include "graphene/bounds.hpp"
#include "graphene/errors.hpp"
#include "iblt/param_cache.hpp"
#include "iblt/param_table.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"
#include "util/wire_limits.hpp"

namespace graphene::core {

std::uint64_t derive_short_id(const chain::TxId& id, std::uint64_t salt,
                              const ProtocolConfig& cfg) noexcept {
  if (cfg.keyed_short_ids) {
    return chain::short_id_keyed(util::SipHashKey{salt, salt ^ 0x717fb1a5c0ffee00ULL}, id);
  }
  return chain::short_id(id);
}

Sender::Sender(chain::Block block, std::uint64_t salt, ProtocolConfig cfg)
    : block_(std::move(block)), salt_(salt), cfg_(cfg) {
  short_ids_.reserve(block_.tx_count());
  for (const chain::Transaction& tx : block_.transactions()) {
    const std::uint64_t sid = derive_short_id(tx.id, salt_, cfg_);
    short_ids_.push_back(sid);
    by_short_id_.emplace(sid, &tx);
  }
}

EncodeResult Sender::encode(std::uint64_t receiver_mempool_count) const {
  obs::Registry* reg = obs::enabled(cfg_.obs);
  const std::uint64_t n = block_.tx_count();
  const std::uint64_t m = std::max(receiver_mempool_count, n);
  EncodeResult out;
  {
    obs::ScopedSpan span(reg, "p1_optimize");
    out.params = optimize_protocol1(n, m, cfg_);
    span.attr("n", n);
    span.attr("m", m);
    span.attr("a", out.params.a);
    span.attr("a_star", out.params.a_star);
    span.attr("fpr_s", out.params.fpr);
    span.attr("bloom_bytes", out.params.bloom_bytes);
    span.attr("iblt_bytes", out.params.iblt_bytes);
  }

  GrapheneBlockMsg& msg = out.msg;
  msg.header = block_.header();
  msg.n = n;
  msg.shortid_salt = salt_;

  // The filter and IBLT builds are independent, so with a pool they run as
  // two concurrent tasks (telemetry is thread-safe). With cfg_.pool null,
  // parallel_for degrades to an in-order loop on the caller, preserving the
  // serial span sequence the telemetry contract tests pin down.
  util::parallel_for(cfg_.pool, 2, [&](std::uint64_t task) {
    if (task == 0) {
      obs::ScopedSpan span(reg, "sfilter_build");
      msg.filter_s = bloom::BloomFilter(n, out.params.fpr, /*seed=*/salt_ ^ 0x5eedf00d,
                                        cfg_.bloom_strategy);
      util::ScratchScope scratch;  // per-thread arena: no heap churn per encode
      const std::span<util::ByteView> ids =
          scratch.span<util::ByteView>(block_.tx_count());
      std::size_t at = 0;
      for (const chain::Transaction& tx : block_.transactions()) {
        ids[at++] = util::ByteView(tx.id.data(), tx.id.size());
      }
      msg.filter_s.insert_batch(ids.data(), ids.size());
      span.attr("items", n);
      span.attr("bits", msg.filter_s.bit_count());
      span.attr("hashes", msg.filter_s.hash_count());
      span.attr("target_fpr", msg.filter_s.target_fpr());
    } else {
      obs::ScopedSpan span(reg, "iblt_build");
      msg.iblt_i = iblt::Iblt(out.params.iblt, /*seed=*/salt_);
      msg.iblt_i.insert_all(short_ids_, cfg_.pool);
      span.attr("items", short_ids_.size());
      span.attr("cells", msg.iblt_i.cell_count());
      span.attr("k", msg.iblt_i.hash_count());
    }
  });

  if (reg != nullptr) {
    reg->counter("graphene_encode_total").inc();
    reg->histogram("graphene_bloom_s_bytes").observe(msg.filter_s.serialized_size());
    reg->histogram("graphene_iblt_i_bytes").observe(msg.iblt_i.serialized_size());
  }
  if (obs::FlightRecorder* fr = obs::flight(reg)) {
    obs::FlightEvent e;
    e.kind = obs::FlightEventKind::kMsgSent;
    e.label = "grblk";
    if (fr->wire_capture()) e.wire = msg.serialize();
    e.attrs = {{"n", static_cast<double>(n)},
               {"m", static_cast<double>(m)},
               {"a", static_cast<double>(out.params.a)},
               {"a_star", static_cast<double>(out.params.a_star)},
               {"fpr_s", out.params.fpr},
               {"bloom_bytes", static_cast<double>(msg.filter_s.serialized_size())},
               {"iblt_cells", static_cast<double>(msg.iblt_i.cell_count())},
               {"iblt_bytes", static_cast<double>(msg.iblt_i.serialized_size())}};
    fr->record(std::move(e));
  }
  return out;
}

GrapheneResponseMsg Sender::serve(const GrapheneRequestMsg& request) const {
  obs::Registry* reg = obs::enabled(cfg_.obs);
  obs::ScopedSpan serve_span(reg, "p2_serve");

  // Belt-and-braces revalidation of the sizing parameters: deserialize caps
  // them on the wire, but serve() is also reachable with an in-memory
  // request, and b + y* sizes the IBLT J allocated below.
  if (request.b > util::wire::kMaxSizingParam ||
      request.y_star > util::wire::kMaxSizingParam ||
      request.b + request.y_star > util::wire::kMaxIbltCells ||
      request.z > util::wire::kMaxWireCollection ||
      !(request.fpr_r > 0.0 && request.fpr_r <= 1.0)) {
    ErrorContext ctx;
    ctx.n = block_.tx_count();
    ctx.z = request.z;
    ctx.y_star = request.y_star;
    ctx.b = request.b;
    if (obs::FlightRecorder* fr = obs::flight(reg)) {
      obs::FlightEvent e;
      e.kind = obs::FlightEventKind::kError;
      e.label = "p2_serve";
      e.attrs = {{"n", static_cast<double>(ctx.n)},
                 {"z", static_cast<double>(ctx.z)},
                 {"y_star", static_cast<double>(ctx.y_star)},
                 {"b", static_cast<double>(ctx.b)}};
      fr->record(std::move(e));
    }
    throw ProtocolError("p2_serve", "request sizing parameters out of range", ctx);
  }

  GrapheneResponseMsg resp;
  const std::uint64_t n = block_.tx_count();

  // Step 3: transactions that do not pass R are certainly missing at the
  // receiver; send them in full. The membership pass runs through the
  // chunked batch scan; the partition below stays serial and in block
  // order, so resp.missing's wire bytes match the item-at-a-time loop.
  util::ScratchScope scratch;  // per-thread arena: serve scratch sized by m
  std::span<const chain::Transaction*> passed_buf =
      scratch.span<const chain::Transaction*>(n);
  std::size_t passed_count = 0;
  {
    const std::span<util::ByteView> ids =
        scratch.span<util::ByteView>(block_.tx_count());
    std::size_t at = 0;
    for (const chain::Transaction& tx : block_.transactions()) {
      ids[at++] = util::ByteView(tx.id.data(), tx.id.size());
    }
    const std::span<std::uint8_t> hit = scratch.span<std::uint8_t>(ids.size());
    bloom::contains_all(request.filter_r, ids.data(), ids.size(), hit.data(), cfg_.pool);
    std::size_t i = 0;
    for (const chain::Transaction& tx : block_.transactions()) {
      if (hit[i++] != 0) {
        passed_buf[passed_count++] = &tx;
      } else {
        resp.missing.push_back(tx);
      }
    }
  }
  const std::span<const chain::Transaction* const> passed =
      passed_buf.first(passed_count);

  std::uint64_t j_items = request.b + request.y_star;

  if (request.reversed) {
    obs::ScopedSpan fb_span(reg, "p2_fallback");
    // §3.3.2 m ≈ n path: re-derive the bounds with the roles of block and
    // mempool swapped, and compensate R's false positives with filter F.
    const std::uint64_t z_s = passed.size();
    const std::uint64_t x_s = bound_x_star(z_s, /*m=*/n, /*n=*/request.z,
                                           request.fpr_r, cfg_.beta);
    const std::uint64_t y_s = bound_y_star(/*m=*/n, x_s, request.fpr_r, cfg_.beta);

    // Optimize b for the joint size of F (over z_s items) and J (b + y_s).
    const std::uint64_t denom =
        std::max<std::uint64_t>(1, request.z > x_s ? request.z - x_s : 1);
    std::uint64_t best_b = 1;
    std::size_t best_total = SIZE_MAX;
    for (std::uint64_t b = 1; b <= denom; b = (b < 128 ? b + 1 : b + b / 8)) {
      const double f_f = std::min(1.0, static_cast<double>(b) / static_cast<double>(denom));
      const std::size_t total = bloom::serialized_bytes(z_s, f_f) +
                                iblt::cached_iblt_bytes(cfg_.param_cache, b + y_s, cfg_.fail_denom);
      if (total < best_total) {
        best_total = total;
        best_b = b;
      }
    }

    const double f_f =
        std::min(1.0, static_cast<double>(best_b) / static_cast<double>(denom));
    bloom::BloomFilter filter_f(z_s, f_f, /*seed=*/salt_ ^ 0xfeedface,
                                cfg_.bloom_strategy);
    const std::span<util::ByteView> passed_ids =
        scratch.span<util::ByteView>(passed.size());
    std::size_t at = 0;
    for (const chain::Transaction* tx : passed) {
      passed_ids[at++] = util::ByteView(tx->id.data(), tx->id.size());
    }
    filter_f.insert_batch(passed_ids.data(), passed_ids.size());
    resp.filter_f = std::move(filter_f);
    j_items = best_b + y_s;
    fb_span.attr("z_s", z_s);
    fb_span.attr("x_s", x_s);
    fb_span.attr("y_s", y_s);
    fb_span.attr("b", best_b);
    fb_span.attr("fpr_f", f_f);
  }

  resp.iblt_j = iblt::Iblt(iblt::cached_params(cfg_.param_cache, j_items, cfg_.fail_denom),
                           /*seed=*/salt_ + 1);
  resp.iblt_j.insert_all(short_ids_, cfg_.pool);

  serve_span.attr("n", n);
  serve_span.attr("z", request.z);
  serve_span.attr("passed", passed.size());
  serve_span.attr("missing", resp.missing.size());
  serve_span.attr("j_items", j_items);
  serve_span.attr("j_cells", resp.iblt_j.cell_count());
  serve_span.attr("reversed", request.reversed ? 1 : 0);
  if (reg != nullptr) {
    reg->counter("graphene_p2_serve_total").inc();
    reg->histogram("graphene_missing_txns").observe(resp.missing.size());
    reg->histogram("graphene_iblt_j_bytes").observe(resp.iblt_j.serialized_size());
  }
  if (obs::FlightRecorder* fr = obs::flight(reg)) {
    obs::FlightEvent e;
    e.kind = obs::FlightEventKind::kMsgSent;
    e.label = "grresp";
    if (fr->wire_capture()) e.wire = resp.serialize();
    e.attrs = {{"missing", static_cast<double>(resp.missing.size())},
               {"missing_tx_bytes", static_cast<double>(resp.missing_tx_bytes())},
               {"j_cells", static_cast<double>(resp.iblt_j.cell_count())},
               {"j_bytes", static_cast<double>(resp.iblt_j.serialized_size())},
               {"reversed", request.reversed ? 1.0 : 0.0}};
    fr->record(std::move(e));
  }
  return resp;
}

RepairResponseMsg Sender::serve_repair(const RepairRequestMsg& request) const {
  obs::Registry* reg = obs::enabled(cfg_.obs);
  obs::ScopedSpan span(reg, "repair_serve");
  RepairResponseMsg resp;
  resp.txns.reserve(request.short_ids.size());
  for (const std::uint64_t sid : request.short_ids) {
    const auto it = by_short_id_.find(sid);
    if (it != by_short_id_.end()) resp.txns.push_back(*it->second);
  }
  span.attr("requested", request.short_ids.size());
  span.attr("served", resp.txns.size());
  if (obs::FlightRecorder* fr = obs::flight(reg)) {
    obs::FlightEvent e;
    e.kind = obs::FlightEventKind::kMsgSent;
    e.label = "blocktxn";
    if (fr->wire_capture()) e.wire = resp.serialize();
    e.attrs = {{"requested", static_cast<double>(request.short_ids.size())},
               {"served", static_cast<double>(resp.txns.size())}};
    fr->record(std::move(e));
  }
  return resp;
}

}  // namespace graphene::core
