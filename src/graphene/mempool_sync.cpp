#include "graphene/mempool_sync.hpp"

#include <unordered_set>

#include "graphene/receiver.hpp"
#include "graphene/sender.hpp"

namespace graphene::core {

namespace {

void record(net::Channel* channel, net::Direction dir, net::MessageType type,
            util::Bytes payload) {
  if (channel != nullptr) channel->send(dir, net::Message{type, std::move(payload)});
}

}  // namespace

MempoolSyncResult sync_mempools(chain::Mempool& sender_pool, chain::Mempool& receiver_pool,
                                std::uint64_t salt, const ProtocolConfig& cfg,
                                net::Channel* channel) {
  MempoolSyncResult result;

  // Degenerate: nothing to offer — the receiver just ships everything over.
  if (sender_pool.size() == 0) {
    for (const chain::Transaction& tx : receiver_pool.transactions()) {
      sender_pool.insert(tx);
      result.txn_bytes += full_tx_wire_size(tx);
      ++result.sender_gained;
    }
    result.success = true;
    return result;
  }

  // The sender's entire mempool plays the role of the block.
  chain::Block pseudo_block(chain::BlockHeader{}, sender_pool.transactions());
  Sender sender(pseudo_block, salt, cfg);
  ReceiveSession receiver(receiver_pool, cfg);

  GrapheneBlockMsg offer = sender.encode(receiver_pool.size()).msg;

  // H: receiver transactions that fail S — provably absent from the sender.
  // The filter pass is the chunked batch scan; collection stays in mempool
  // order.
  std::vector<chain::Transaction> to_sender;
  {
    const std::vector<chain::Transaction>& txns = receiver_pool.transactions();
    std::vector<util::ByteView> ids;
    ids.reserve(txns.size());
    for (const chain::Transaction& tx : txns) ids.emplace_back(tx.id.data(), tx.id.size());
    std::vector<std::uint8_t> hit(ids.size());
    bloom::contains_all(offer.filter_s, ids.data(), ids.size(), hit.data(), cfg.pool);
    for (std::size_t i = 0; i < txns.size(); ++i) {
      if (hit[i] == 0) to_sender.push_back(txns[i]);
    }
  }

  util::Bytes offer_bytes = offer.serialize();
  result.graphene_bytes += offer_bytes.size();
  record(channel, net::Direction::kSenderToReceiver, net::MessageType::kMempoolSyncOffer,
         std::move(offer_bytes));

  ReceiveOutcome out = receiver.receive_block(offer);

  if (out.status == ReceiveStatus::kNeedsProtocol2) {
    result.used_protocol2 = true;
    GrapheneRequestMsg req = receiver.build_request();
    util::Bytes req_bytes = req.serialize();
    result.graphene_bytes += req_bytes.size();
    record(channel, net::Direction::kReceiverToSender, net::MessageType::kMempoolSyncRequest,
           std::move(req_bytes));

    GrapheneResponseMsg resp = sender.serve(req);
    util::Bytes resp_bytes = resp.serialize();
    result.graphene_bytes += resp_bytes.size() - resp.missing_tx_bytes();
    result.txn_bytes += resp.missing_tx_bytes();
    record(channel, net::Direction::kSenderToReceiver, net::MessageType::kMempoolSyncResponse,
           std::move(resp_bytes));

    out = receiver.complete(resp);
  }

  if (out.status == ReceiveStatus::kNeedsRepair) {
    result.used_repair = true;
    RepairRequestMsg rep = receiver.build_repair();
    util::Bytes rep_bytes = rep.serialize();
    result.graphene_bytes += rep_bytes.size();
    record(channel, net::Direction::kReceiverToSender, net::MessageType::kMempoolSyncRequest,
           std::move(rep_bytes));

    RepairResponseMsg rep_resp = sender.serve_repair(rep);
    util::Bytes rep_resp_bytes = rep_resp.serialize();
    result.txn_bytes += rep_resp_bytes.size();
    record(channel, net::Direction::kSenderToReceiver, net::MessageType::kMempoolSyncResponse,
           std::move(rep_resp_bytes));

    out = receiver.complete_repair(rep_resp);
  }

  if (out.status != ReceiveStatus::kDecoded) {
    return result;  // success stays false; caller may fall back to full dump
  }

  // Receiver side of the union: adopt every sender transaction she lacked.
  for (const chain::Transaction& tx : receiver.block_transactions()) {
    if (receiver_pool.insert(tx)) ++result.receiver_gained;
  }

  // Sender side of the union: H plus IBLT-identified false positives. After
  // a successful decode the receiver knows the sender's exact set, so
  // anything in her pool outside it is worth shipping.
  std::unordered_set<chain::TxId, chain::TxIdHasher> sender_set;
  for (const chain::TxId& id : pseudo_block.tx_ids()) sender_set.insert(id);
  for (const chain::Transaction& tx : receiver_pool.transactions()) {
    if (sender_set.count(tx.id) == 0) {
      to_sender.push_back(tx);
    }
  }

  std::unordered_set<chain::TxId, chain::TxIdHasher> shipped;
  RepairResponseMsg h_msg;
  for (const chain::Transaction& tx : to_sender) {
    if (!shipped.insert(tx.id).second) continue;
    if (sender_pool.insert(tx)) {
      ++result.sender_gained;
      h_msg.txns.push_back(tx);
    }
  }
  if (!h_msg.txns.empty()) {
    util::Bytes h_bytes = h_msg.serialize();
    result.txn_bytes += h_bytes.size();
    record(channel, net::Direction::kReceiverToSender, net::MessageType::kMempoolSyncResponse,
           std::move(h_bytes));
  }

  result.success = sender_pool.size() == receiver_pool.size();
  return result;
}

}  // namespace graphene::core
