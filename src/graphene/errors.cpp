#include "graphene/errors.hpp"

namespace graphene::core {

std::string ProtocolError::format(const std::string& stage, const std::string& what,
                                  const ErrorContext& ctx) {
  std::string out = "Receiver::" + stage + ": " + what;
  out += " [have_block_msg=";
  out += ctx.have_block_msg ? "true" : "false";
  out += " n=" + std::to_string(ctx.n);
  out += " m=" + std::to_string(ctx.m);
  out += " z=" + std::to_string(ctx.z);
  out += " x*=" + std::to_string(ctx.x_star);
  out += " y*=" + std::to_string(ctx.y_star);
  out += " b=" + std::to_string(ctx.b);
  out += "]";
  return out;
}

}  // namespace graphene::core
