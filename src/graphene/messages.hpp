// Graphene wire messages (the public network specification, §3.1–§3.2).
//
// Full transactions serialize to exactly their nominal `size_bytes` on the
// wire (id + length + synthetic body), so byte accounting for "missing
// transaction" traffic matches what a real link would carry.
#pragma once

#include <optional>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "chain/block.hpp"
#include "iblt/iblt.hpp"

namespace graphene::core {

/// Protocol 1, step 3: block header, announced tx count, short-ID salt, the
/// sender's Bloom filter S, and IBLT I.
struct GrapheneBlockMsg {
  chain::BlockHeader header{};
  std::uint64_t n = 0;
  std::uint64_t shortid_salt = 0;
  bloom::BloomFilter filter_s;
  iblt::Iblt iblt_i;

  /// Appends the wire encoding to `w` (scatter form of serialize()).

  void serialize_into(util::ByteWriter& w) const;

  [[nodiscard]] util::Bytes serialize() const;
  static GrapheneBlockMsg deserialize(util::ByteReader& reader);
};

/// Protocol 2, step 2: the receiver's filter R plus the parameters the
/// sender needs (b, y*, z and the m≈n reversal flag).
struct GrapheneRequestMsg {
  std::uint64_t z = 0;
  std::uint64_t b = 0;
  std::uint64_t y_star = 0;
  double fpr_r = 1.0;  ///< FPR of filter_r (the sender re-derives bounds from it)
  bool reversed = false;
  bloom::BloomFilter filter_r;

  /// Appends the wire encoding to `w` (scatter form of serialize()).

  void serialize_into(util::ByteWriter& w) const;

  [[nodiscard]] util::Bytes serialize() const;
  static GrapheneRequestMsg deserialize(util::ByteReader& reader);
};

/// Protocol 2, steps 3–4: missing transactions, IBLT J, and — in the m≈n
/// reversal — the sender's compensating filter F.
struct GrapheneResponseMsg {
  std::vector<chain::Transaction> missing;
  iblt::Iblt iblt_j;
  std::optional<bloom::BloomFilter> filter_f;

  /// Appends the wire encoding to `w` (scatter form of serialize()).

  void serialize_into(util::ByteWriter& w) const;

  [[nodiscard]] util::Bytes serialize() const;
  static GrapheneResponseMsg deserialize(util::ByteReader& reader);

  /// Payload bytes attributable to the missing transactions alone (the
  /// paper's figures exclude these; the simulator reports them separately).
  [[nodiscard]] std::size_t missing_tx_bytes() const noexcept;
};

/// Final repair round (extension, documented in DESIGN.md §6): short IDs the
/// receiver decoded from an IBLT but holds no transaction for.
struct RepairRequestMsg {
  std::vector<std::uint64_t> short_ids;
  /// Appends the wire encoding to `w` (scatter form of serialize()).
  void serialize_into(util::ByteWriter& w) const;
  [[nodiscard]] util::Bytes serialize() const;
  static RepairRequestMsg deserialize(util::ByteReader& reader);
};

struct RepairResponseMsg {
  std::vector<chain::Transaction> txns;
  /// Appends the wire encoding to `w` (scatter form of serialize()).
  void serialize_into(util::ByteWriter& w) const;
  [[nodiscard]] util::Bytes serialize() const;
  static RepairResponseMsg deserialize(util::ByteReader& reader);
};

/// Serializes a full transaction at its nominal wire size.
void write_full_tx(util::ByteWriter& w, const chain::Transaction& tx);
[[nodiscard]] chain::Transaction read_full_tx(util::ByteReader& r);
[[nodiscard]] std::size_t full_tx_wire_size(const chain::Transaction& tx) noexcept;

}  // namespace graphene::core
