#include "graphene/messages.hpp"

#include <algorithm>

#include "util/varint.hpp"
#include "util/wire_limits.hpp"

namespace graphene::core {

namespace {
// id (32) + u32 size field.
constexpr std::size_t kTxFixedOverhead = 36;

/// Reads an optional-field presence flag; only the canonical encodings 0 and
/// 1 are accepted, so every message has exactly one wire form.
bool read_presence_flag(util::ByteReader& reader, const char* what) {
  const std::uint8_t flag = reader.u8();
  if (flag > 1) {
    throw util::DeserializeError(std::string(what) + ": invalid presence flag " +
                                 std::to_string(flag));
  }
  return flag == 1;
}

/// An FPR echoed over the wire must be a real probability: NaN or a value
/// outside (0, 1] would poison the sender's Theorem 2/3 bound arithmetic.
double checked_fpr(double fpr, const char* what) {
  if (!(fpr > 0.0 && fpr <= 1.0)) {
    throw util::DeserializeError(std::string(what) + ": fpr not in (0, 1]");
  }
  return fpr;
}
}  // namespace

void write_full_tx(util::ByteWriter& w, const chain::Transaction& tx) {
  w.raw(util::ByteView(tx.id.data(), tx.id.size()));
  w.u32(tx.size_bytes);
  // Synthetic body pads the record to the transaction's nominal size.
  const std::size_t body =
      tx.size_bytes > kTxFixedOverhead ? tx.size_bytes - kTxFixedOverhead : 0;
  for (std::size_t i = 0; i < body; ++i) w.u8(0xab);
}

chain::Transaction read_full_tx(util::ByteReader& r) {
  chain::Transaction tx;
  r.raw_into(tx.id.data(), tx.id.size());
  tx.size_bytes = r.u32();
  // Cap before the claimed size leaves the deserializer: it pads body bytes
  // here AND re-serialization of the decoded block later, so an unvalidated
  // 4 GiB claim in a 40-byte record amplifies into downstream allocations
  // (tests/net/test_wire_regressions.cpp has the minimized fixture).
  if (tx.size_bytes > util::wire::kMaxTxWireSize) {
    throw util::DeserializeError("full tx: claimed size " +
                                 std::to_string(tx.size_bytes) +
                                 " exceeds kMaxTxWireSize");
  }
  const std::size_t body =
      tx.size_bytes > kTxFixedOverhead ? tx.size_bytes - kTxFixedOverhead : 0;
  (void)r.raw(body);
  return tx;
}

std::size_t full_tx_wire_size(const chain::Transaction& tx) noexcept {
  return std::max<std::size_t>(tx.size_bytes, kTxFixedOverhead);
}

void GrapheneBlockMsg::serialize_into(util::ByteWriter& w) const {
  header.serialize_into(w);
  util::write_varint(w, n);
  w.u64(shortid_salt);
  filter_s.serialize_into(w);
  iblt_i.serialize_into(w);
}

util::Bytes GrapheneBlockMsg::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

GrapheneBlockMsg GrapheneBlockMsg::deserialize(util::ByteReader& reader) {
  GrapheneBlockMsg msg;
  msg.header = chain::BlockHeader::deserialize(reader);
  msg.n = util::read_varint_bounded(reader, util::wire::kMaxBlockTxCount,
                                    "GrapheneBlockMsg n");
  msg.shortid_salt = reader.u64();
  msg.filter_s = bloom::BloomFilter::deserialize(reader);
  msg.iblt_i = iblt::Iblt::deserialize(reader);
  return msg;
}

void GrapheneRequestMsg::serialize_into(util::ByteWriter& w) const {
  util::write_varint(w, z);
  util::write_varint(w, b);
  util::write_varint(w, y_star);
  std::uint64_t fpr_bits = 0;
  static_assert(sizeof(fpr_bits) == sizeof(fpr_r));
  std::memcpy(&fpr_bits, &fpr_r, sizeof(fpr_bits));
  w.u64(fpr_bits);
  w.u8(reversed ? 1 : 0);
  filter_r.serialize_into(w);
}

util::Bytes GrapheneRequestMsg::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

GrapheneRequestMsg GrapheneRequestMsg::deserialize(util::ByteReader& reader) {
  GrapheneRequestMsg msg;
  msg.z = util::read_varint_bounded(reader, util::wire::kMaxWireCollection,
                                    "GrapheneRequestMsg z");
  // b and y* size the IBLT the sender builds in response (b + y* cells), so
  // they are capped before they can reach an allocator.
  msg.b = util::read_varint_bounded(reader, util::wire::kMaxSizingParam,
                                    "GrapheneRequestMsg b");
  msg.y_star = util::read_varint_bounded(reader, util::wire::kMaxSizingParam,
                                         "GrapheneRequestMsg y_star");
  const std::uint64_t fpr_bits = reader.u64();
  std::memcpy(&msg.fpr_r, &fpr_bits, sizeof(msg.fpr_r));
  msg.fpr_r = checked_fpr(msg.fpr_r, "GrapheneRequestMsg");
  msg.reversed = read_presence_flag(reader, "GrapheneRequestMsg reversed");
  msg.filter_r = bloom::BloomFilter::deserialize(reader);
  return msg;
}

void GrapheneResponseMsg::serialize_into(util::ByteWriter& w) const {
  util::write_varint(w, missing.size());
  for (const chain::Transaction& tx : missing) write_full_tx(w, tx);
  iblt_j.serialize_into(w);
  w.u8(filter_f.has_value() ? 1 : 0);
  if (filter_f) filter_f->serialize_into(w);
}

util::Bytes GrapheneResponseMsg::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

GrapheneResponseMsg GrapheneResponseMsg::deserialize(util::ByteReader& reader) {
  GrapheneResponseMsg msg;
  const std::uint64_t count = util::read_varint_bounded(
      reader, util::wire::kMaxWireCollection, "GrapheneResponseMsg count");
  if (count > reader.remaining() / kTxFixedOverhead) {
    throw util::DeserializeError("GrapheneResponseMsg: transaction count exceeds buffer");
  }
  msg.missing.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) msg.missing.push_back(read_full_tx(reader));
  msg.iblt_j = iblt::Iblt::deserialize(reader);
  if (read_presence_flag(reader, "GrapheneResponseMsg filter_f")) {
    msg.filter_f = bloom::BloomFilter::deserialize(reader);
  }
  return msg;
}

std::size_t GrapheneResponseMsg::missing_tx_bytes() const noexcept {
  std::size_t total = 0;
  for (const chain::Transaction& tx : missing) total += full_tx_wire_size(tx);
  return total;
}

void RepairRequestMsg::serialize_into(util::ByteWriter& w) const {
  util::write_varint(w, short_ids.size());
  for (std::uint64_t id : short_ids) w.u64(id);
}

util::Bytes RepairRequestMsg::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

RepairRequestMsg RepairRequestMsg::deserialize(util::ByteReader& reader) {
  RepairRequestMsg msg;
  const std::uint64_t count = util::read_varint_bounded(
      reader, util::wire::kMaxWireCollection, "RepairRequestMsg count");
  if (count > reader.remaining() / 8) {
    throw util::DeserializeError("RepairRequestMsg: id count exceeds buffer");
  }
  msg.short_ids.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) msg.short_ids.push_back(reader.u64());
  return msg;
}

void RepairResponseMsg::serialize_into(util::ByteWriter& w) const {
  util::write_varint(w, txns.size());
  for (const chain::Transaction& tx : txns) write_full_tx(w, tx);
}

util::Bytes RepairResponseMsg::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

RepairResponseMsg RepairResponseMsg::deserialize(util::ByteReader& reader) {
  RepairResponseMsg msg;
  const std::uint64_t count = util::read_varint_bounded(
      reader, util::wire::kMaxWireCollection, "RepairResponseMsg count");
  if (count > reader.remaining() / kTxFixedOverhead) {
    throw util::DeserializeError("RepairResponseMsg: transaction count exceeds buffer");
  }
  msg.txns.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) msg.txns.push_back(read_full_tx(reader));
  return msg;
}

}  // namespace graphene::core
