// Size-optimal parameter selection for both protocols (§3.3.1, §3.3.2).
//
// The optimizers minimize the *serialized* byte size of Bloom filter + IBLT
// using ceiling-accurate discrete size functions — the paper notes (§3.3.1)
// that the continuous closed form (Eq. 3) can land up to 20% above the true
// minimum for a < 100, so we sweep the small-a region exactly and use a
// geometric grid + local refinement beyond it.
#pragma once

#include <cstdint>

#include "iblt/iblt.hpp"

namespace graphene::bloom {
enum class HashStrategy : std::uint8_t;
}  // namespace graphene::bloom

namespace graphene::obs {
class Registry;
}  // namespace graphene::obs

namespace graphene::util {
class ThreadPool;
}  // namespace graphene::util

namespace graphene::iblt {
class ParamCache;
}  // namespace graphene::iblt

namespace graphene::core {

/// Which set-reconciliation construction `reconcile::Host`/`Client` drive.
/// The choice is session-local and off the wire for existing messages:
/// kGraphene emits byte-identical Offer/Request/Response traffic, while
/// kRatelessIblt speaks the chunked coded-symbol messages instead.
enum class ReconcileBackend : std::uint8_t {
  kGraphene,      ///< Bloom + IBLT offer/repair/fetch rounds (paper §3–4)
  kRatelessIblt,  ///< rateless coded-symbol stream (arXiv 2402.02668)
};

struct ProtocolConfig {
  /// β-assurance level for all Chernoff bounds (paper default 239/240).
  double beta = 239.0 / 240.0;
  /// Target IBLT decode-failure denominator (failure rate 1/fail_denom).
  std::uint32_t fail_denom = 240;
  /// Key the 8-byte IBLT short IDs with SipHash (§6.1 hardening). When
  /// false, short IDs are the first 8 bytes of the txid.
  bool keyed_short_ids = true;
  /// FPR pinned by the receiver in the m ≈ n fallback (§3.3.2, tested
  /// efficient for 0.001–0.2).
  double near_equal_fpr = 0.1;
  /// Joint decoding of I and J when J alone leaves a 2-core (§4.2). Off only
  /// for the Fig. 16 ablation.
  bool enable_pingpong = true;
  /// Telemetry sink for counters, stage timings, and trace spans (see
  /// src/obs/). Null (the default) disables instrumentation at the cost of
  /// one branch per stage; not owned, must outlive the engines using it.
  obs::Registry* obs = nullptr;
  /// Shared worker pool for parallel Algorithm 1 searches and the
  /// simulator's trial fan-out (see docs/CONCURRENCY.md). Null runs
  /// everything serially with identical results; not owned, must outlive
  /// the engines using it. Share ONE pool per process — every engine
  /// holding this config reaches the same workers.
  util::ThreadPool* pool = nullptr;
  /// Shared memoization of param-table lookups; safe to share across
  /// concurrently-driven sessions. Null falls back to direct lookups; not
  /// owned, must outlive the engines using it.
  iblt::ParamCache* param_cache = nullptr;
  /// Probe layout of the Bloom filters the engines build (S, R, F). The
  /// default 0 is bloom::HashStrategy::kSplitDigest — the §6.3 wire format
  /// every peer understands. bloom::HashStrategy::kBlocked confines each
  /// item's k probes to one 64-byte block, the fastest layout for the
  /// receiver's m-sized mempool scan, at a small constant-factor FPR
  /// penalty (quantified in docs/PERFORMANCE.md); it rides a previously
  /// invalid range of the strategy byte, so only upgraded peers parse it.
  bloom::HashStrategy bloom_strategy = bloom::HashStrategy{0};
  /// Set-reconciliation backend for reconcile::Host/Client sessions. Both
  /// ends must agree (the driver rejects mismatched message types).
  ReconcileBackend reconcile_backend = ReconcileBackend::kGraphene;
  /// Coded symbols in the first RatelessChunk; later chunks double. The
  /// stream is rateless, so this only tunes round trips vs. overshoot.
  std::uint32_t rateless_initial_symbols = 16;
  /// Hard ceiling on message round trips in one reconcile session; the
  /// driver aborts (kFailed) beyond it so no backend can loop forever.
  std::uint32_t reconcile_round_cap = 64;
};

/// Chosen Protocol 1 parameters for relaying n block txns to a receiver
/// holding m mempool txns.
struct Protocol1Params {
  double fpr = 1.0;             ///< f_S = a/(m−n), or 1 when m = n
  std::uint64_t a = 0;          ///< expected Bloom false positives
  std::uint64_t a_star = 1;     ///< β-assurance bound (Theorem 1)
  iblt::IbltParams iblt{};      ///< table-optimal IBLT for a_star items
  std::size_t bloom_bytes = 0;  ///< predicted serialized filter size
  std::size_t iblt_bytes = 0;   ///< predicted serialized IBLT size
  [[nodiscard]] std::size_t total_bytes() const noexcept { return bloom_bytes + iblt_bytes; }
};

/// Chosen Protocol 2 parameters (receiver side, step 2).
struct Protocol2Params {
  double fpr = 1.0;             ///< f_R = b/(n−x*)
  std::uint64_t b = 1;          ///< expected false positives through R
  std::uint64_t x_star = 0;     ///< Theorem 2 lower bound on true positives
  std::uint64_t y_star = 1;     ///< Theorem 3 upper bound on S's false positives
  iblt::IbltParams iblt{};      ///< IBLT J sized for b + y_star
  std::size_t bloom_bytes = 0;
  std::size_t iblt_bytes = 0;
  bool reversed = false;        ///< m ≈ n fallback engaged (§3.3.2)
  [[nodiscard]] std::size_t total_bytes() const noexcept { return bloom_bytes + iblt_bytes; }
};

/// Minimizes |S| + |I| over the Bloom false-positive budget a (Protocol 1).
[[nodiscard]] Protocol1Params optimize_protocol1(std::uint64_t n, std::uint64_t m,
                                                 const ProtocolConfig& cfg = {});

/// Minimizes |R| + |J| over b (Protocol 2). `z` is the receiver's candidate
/// set size, `f_s` the FPR of the Protocol 1 filter actually received.
[[nodiscard]] Protocol2Params optimize_protocol2(std::uint64_t z, std::uint64_t m,
                                                 std::uint64_t n, double f_s,
                                                 const ProtocolConfig& cfg = {});

/// Continuous-approximation optimum a = n / (8 r τ ln² 2) (Eq. 3); exposed
/// for tests that check the discrete search brackets it.
[[nodiscard]] double eq3_continuous_a(std::uint64_t n, double tau) noexcept;

}  // namespace graphene::core
