#include "graphene/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace graphene::core {

std::uint64_t bound_a_star(double a, double beta) noexcept {
  if (a <= 0.0) return 1;  // Degenerate: still provision one recoverable item.
  const double delta = util::chernoff_delta(a, beta);
  return static_cast<std::uint64_t>(std::max(1.0, std::ceil((1.0 + delta) * a)));
}

std::uint64_t bound_x_star(std::uint64_t z, std::uint64_t m, std::uint64_t n, double f_s,
                           double beta) noexcept {
  // x* is the largest k for which the Theorem-2 tail bound on Pr[x ≤ k]
  // stays within 1−β. The bound is monotone in k (δ_k shrinks as k grows),
  // so a forward scan that stops at the first violation is exact.
  const double budget = 1.0 - beta;
  const std::uint64_t k_max = std::min(z, n);
  std::uint64_t x_star = 0;
  for (std::uint64_t k = 0; k <= k_max; ++k) {
    const double mu = static_cast<double>(m - k) * f_s;
    const double y_needed = static_cast<double>(z - k);
    if (mu <= 0.0) {
      // No false positives possible; all z observations are true positives.
      x_star = k;
      continue;
    }
    const double delta_k = y_needed / mu - 1.0;
    if (delta_k <= 0.0) break;  // Tail bound is vacuous (≥ 1) from here on.
    // Theorem 2 sums k+1 identical tail terms.
    const double tail =
        static_cast<double>(k + 1) * util::chernoff_upper_tail(delta_k, mu);
    if (tail > budget) break;
    x_star = k;
  }
  return x_star;
}

std::uint64_t bound_y_star(std::uint64_t m, std::uint64_t x_star, double f_s,
                           double beta) noexcept {
  if (x_star >= m) return 1;
  const double mu = static_cast<double>(m - x_star) * f_s;
  if (mu <= 0.0) return 1;
  const double delta = util::chernoff_delta(mu, beta);
  return static_cast<std::uint64_t>(std::max(1.0, std::ceil((1.0 + delta) * mu)));
}

}  // namespace graphene::core
