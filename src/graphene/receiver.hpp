// Receiver-side protocol engine (Protocols 1 and 2, §3.1–§3.2).
//
// ReceiveSession drives the full state machine for ONE relayed block:
//
//   receive_block  → Decoded | NeedsProtocol2 | Failed
//   build_request  → GrapheneRequestMsg              (Protocol 2 step 1–2)
//   complete       → Decoded | NeedsRepair | Failed  (step 5, + ping-pong)
//   build_repair / complete_repair                   (short-ID fetch round)
//
// Ping-pong decoding (§4.2) engages automatically in complete(): when J ⊖ J′
// leaves a 2-core, the receiver rebuilds I′ over the updated candidate set
// and decodes both differences jointly.
//
// Receiver is the long-lived per-node object: it holds the mempool binding
// and configuration and mints a fresh ReceiveSession per relay. Sessions
// from one Receiver are independent, so distinct peers' relays can be
// driven concurrently from pool threads. Receiver also keeps the legacy
// one-block-at-a-time methods as a facade over an internal session; see the
// deprecation note below.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "chain/mempool.hpp"
#include "graphene/errors.hpp"
#include "graphene/messages.hpp"
#include "graphene/params.hpp"

namespace graphene::core {

enum class ReceiveStatus : std::uint8_t {
  kDecoded,         ///< block recovered and Merkle-validated
  kNeedsProtocol2,  ///< IBLT I failed or block txns are missing — run Protocol 2
  kNeedsRepair,     ///< symmetric difference resolved but txn bytes missing
  kFailed,          ///< unrecoverable (or malformed/attack input)
};

/// Stable label for metrics, flight events, and forensic captures
/// ("decoded", "needs_protocol2", "needs_repair", "failed").
[[nodiscard]] const char* to_string(ReceiveStatus status) noexcept;

struct ReceiveOutcome {
  ReceiveStatus status = ReceiveStatus::kFailed;
  /// CTOR-ordered block txids; populated when status == kDecoded.
  std::vector<chain::TxId> block_ids;
  /// Short IDs known to belong to the block but with no transaction held.
  std::vector<std::uint64_t> unresolved;
  /// True when the final Merkle check passed.
  bool merkle_ok = false;
  /// Diagnostics for benches: did ping-pong decoding rescue this block?
  bool used_pingpong = false;
};

/// Decode state for one relayed block, from Protocol 1 through Protocol 2
/// and the repair round. Create one per relay (Receiver::session()); never
/// share one instance across threads — instead give each concurrent relay
/// its own session, which is safe because sessions only read the mempool.
class ReceiveSession {
 public:
  explicit ReceiveSession(const chain::Mempool& mempool, ProtocolConfig cfg = {});

  /// Protocol 1 step 4. On kDecoded the block is fully recovered.
  ReceiveOutcome receive_block(const GrapheneBlockMsg& msg);

  /// Protocol 2 steps 1–2. Must follow a non-decoded receive_block().
  [[nodiscard]] GrapheneRequestMsg build_request();

  /// Protocol 2 step 5.
  ReceiveOutcome complete(const GrapheneResponseMsg& resp);

  /// Short-ID repair round for any unresolved items.
  [[nodiscard]] RepairRequestMsg build_repair() const;
  ReceiveOutcome complete_repair(const RepairResponseMsg& resp);

  /// All transactions recovered for the block (valid after kDecoded).
  [[nodiscard]] std::vector<chain::Transaction> block_transactions() const;

  /// Parameters chosen by build_request() — exposed for the benchmarks that
  /// decompose message sizes (Fig. 17).
  [[nodiscard]] const Protocol2Params& request_params() const noexcept {
    return params2_;
  }

  /// Candidate-set size |Z| observed right after filtering the mempool
  /// through S — the Protocol 2 sizing input and the error-context `z`.
  [[nodiscard]] std::uint64_t observed_z() const noexcept { return z_; }

 private:
  ReceiveOutcome finalize(std::vector<std::uint64_t> unresolved, bool used_pingpong);
  void index_candidate(const chain::TxId& id);
  [[nodiscard]] std::uint64_t sid(const chain::TxId& id) const noexcept;
  /// Snapshot of the protocol position for errors and trace records.
  [[nodiscard]] ErrorContext error_context() const noexcept;
  /// Records an `error` trace span + counter, then throws ProtocolError.
  [[noreturn]] void raise(const char* stage, const char* what) const;
  /// Env-gated forensic capture dump (see forensics.hpp); no-op unless a
  /// registry is attached and GRAPHENE_CAPTURE_DIR is set.
  void dump_failure(const char* kind, const char* stage) const;

  const chain::Mempool* mempool_;
  ProtocolConfig cfg_;

  // Protocol state (valid between receive_block and completion).
  GrapheneBlockMsg msg_{};
  Protocol2Params params2_{};
  bool have_block_msg_ = false;
  std::uint64_t z_ = 0;

  /// Candidate block membership: short id → txid, plus txn storage for
  /// transactions that arrived over the wire rather than from the mempool.
  std::unordered_map<std::uint64_t, chain::TxId> sid_to_txid_;
  std::unordered_set<std::uint64_t> ambiguous_sids_;
  std::unordered_set<chain::TxId, chain::TxIdHasher> candidates_;
  std::unordered_map<chain::TxId, chain::Transaction, chain::TxIdHasher> received_txns_;
  std::vector<std::uint64_t> pending_unresolved_;
};

/// Long-lived per-node receiver: binds a mempool + config and mints
/// ReceiveSessions. One session decodes one relayed block; drive the
/// returned object directly. (The former pass-through protocol methods that
/// serialized every relay through one implicit session were removed — call
/// session() instead.)
class Receiver {
 public:
  explicit Receiver(const chain::Mempool& mempool, ProtocolConfig cfg = {});

  /// Mints an independent decode session for one relayed block. Safe to
  /// call from multiple threads; each session is then driven by its owner.
  [[nodiscard]] ReceiveSession session() const {
    return ReceiveSession(*mempool_, cfg_);
  }

 private:
  const chain::Mempool* mempool_;
  ProtocolConfig cfg_;
};

}  // namespace graphene::core
