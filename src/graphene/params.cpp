#include "graphene/params.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "bloom/bloom_math.hpp"
#include "graphene/bounds.hpp"
#include "iblt/param_cache.hpp"
#include "iblt/param_table.hpp"

namespace graphene::core {

namespace {

/// Candidate grid over a budget in [1, limit]: exhaustive below 128 (where
/// ceiling effects dominate), geometric above, then the caller refines
/// locally around the winner.
std::vector<std::uint64_t> candidate_grid(std::uint64_t limit) {
  std::vector<std::uint64_t> out;
  const std::uint64_t dense = std::min<std::uint64_t>(limit, 128);
  for (std::uint64_t v = 1; v <= dense; ++v) out.push_back(v);
  double v = 128.0;
  while (static_cast<std::uint64_t>(v) < limit) {
    v *= 1.08;
    out.push_back(std::min(limit, static_cast<std::uint64_t>(v)));
  }
  if (out.empty() || out.back() != limit) out.push_back(limit);
  return out;
}

}  // namespace

double eq3_continuous_a(std::uint64_t n, double tau) noexcept {
  constexpr double kLn2Sq = 0.6931471805599453 * 0.6931471805599453;
  const double r = static_cast<double>(iblt::Iblt::kCellBytes);
  return static_cast<double>(n) / (8.0 * r * tau * kLn2Sq);
}

Protocol1Params optimize_protocol1(std::uint64_t n, std::uint64_t m,
                                   const ProtocolConfig& cfg) {
  Protocol1Params best;
  const std::uint64_t diff = m > n ? m - n : 0;

  if (diff == 0) {
    // m = n: an FPR-1 filter (not sent) plus a minimal IBLT (§5.1's
    // "approaches an IBLT-only solution" limit).
    best.fpr = 1.0;
    best.a = 0;
    best.a_star = 1;
    best.iblt = iblt::cached_params(cfg.param_cache, best.a_star, cfg.fail_denom);
    best.bloom_bytes = bloom::serialized_bytes(n, 1.0);
    best.iblt_bytes = iblt::Iblt::serialized_size_for(best.iblt.cells);
    return best;
  }

  auto evaluate = [&](std::uint64_t a) -> Protocol1Params {
    Protocol1Params p;
    p.a = std::clamp<std::uint64_t>(a, 1, diff);
    p.fpr = std::min(1.0, static_cast<double>(p.a) / static_cast<double>(diff));
    // The discrete filter's bit/hash rounding can push its *effective* FPR
    // above the target; size the IBLT from the worse of the two or decode
    // failures exceed 1−β at large m/n (observed on the Fig. 13 workload).
    const std::uint64_t bits = bloom::optimal_bits(n, p.fpr);
    const double eff =
        bloom::expected_fpr(bits, bloom::optimal_hash_count(bits, std::max<std::uint64_t>(n, 1)), n);
    const double a_eff =
        std::max(static_cast<double>(p.a), eff * static_cast<double>(diff));
    p.a_star = bound_a_star(a_eff, cfg.beta);
    p.iblt = iblt::cached_params(cfg.param_cache, p.a_star, cfg.fail_denom);
    p.bloom_bytes = bloom::serialized_bytes(n, p.fpr);
    p.iblt_bytes = iblt::Iblt::serialized_size_for(p.iblt.cells);
    return p;
  };

  best = evaluate(1);
  for (const std::uint64_t a : candidate_grid(diff)) {
    const Protocol1Params p = evaluate(a);
    if (p.total_bytes() < best.total_bytes()) best = p;
  }
  // Local refinement: the grid is coarse above 128.
  const std::uint64_t center = best.a;
  const std::uint64_t lo = center > 16 ? center - 16 : 1;
  for (std::uint64_t a = lo; a <= std::min(diff, center + 16); ++a) {
    const Protocol1Params p = evaluate(a);
    if (p.total_bytes() < best.total_bytes()) best = p;
  }
  return best;
}

Protocol2Params optimize_protocol2(std::uint64_t z, std::uint64_t m, std::uint64_t n,
                                   double f_s, const ProtocolConfig& cfg) {
  Protocol2Params best;
  best.x_star = bound_x_star(z, m, n, f_s, cfg.beta);
  best.y_star = bound_y_star(m, best.x_star, f_s, cfg.beta);

  // §3.3.2 special case: z ≈ m and f_R would be pushed to ~1 — the receiver
  // pins f_R instead and the roles reverse (sender sends filter F).
  const std::uint64_t missing = n > best.x_star ? n - best.x_star : 0;
  if (missing == 0 || best.y_star >= m || z == m) {
    best.reversed = true;
    best.fpr = cfg.near_equal_fpr;
    best.b = static_cast<std::uint64_t>(std::max(
        1.0, std::ceil(cfg.near_equal_fpr * static_cast<double>(std::max<std::uint64_t>(
                                                1, n - std::min(n, best.x_star))))));
    best.iblt = iblt::cached_params(cfg.param_cache, best.b + best.y_star, cfg.fail_denom);
    best.bloom_bytes = bloom::serialized_bytes(z, best.fpr);
    best.iblt_bytes = iblt::Iblt::serialized_size_for(best.iblt.cells);
    return best;
  }

  auto evaluate = [&](std::uint64_t b) -> Protocol2Params {
    Protocol2Params p = best;
    p.b = std::clamp<std::uint64_t>(b, 1, missing);
    p.fpr = std::min(1.0, static_cast<double>(p.b) / static_cast<double>(missing));
    p.iblt = iblt::cached_params(cfg.param_cache, p.b + p.y_star, cfg.fail_denom);
    p.bloom_bytes = bloom::serialized_bytes(z, p.fpr);
    p.iblt_bytes = iblt::Iblt::serialized_size_for(p.iblt.cells);
    return p;
  };

  best = evaluate(1);
  for (const std::uint64_t b : candidate_grid(missing)) {
    const Protocol2Params p = evaluate(b);
    if (p.total_bytes() < best.total_bytes()) best = p;
  }
  const std::uint64_t center = best.b;
  const std::uint64_t lo = center > 16 ? center - 16 : 1;
  for (std::uint64_t b = lo; b <= std::min(missing, center + 16); ++b) {
    const Protocol2Params p = evaluate(b);
    if (p.total_bytes() < best.total_bytes()) best = p;
  }
  return best;
}

}  // namespace graphene::core
