#include "graphene/forensics.hpp"

#include <atomic>
#include <cstdlib>
#include <fstream>

#include "graphene/messages.hpp"
#include "graphene/receiver.hpp"
#include "graphene/sender.hpp"
#include "obs/obs.hpp"
#include "util/base64.hpp"
#include "util/hex.hpp"
#include "util/varint.hpp"
#include "util/wire_limits.hpp"

namespace graphene::core {

namespace {

/// Compact transaction-set codec for the mempool/block snapshots: varint
/// count, then 32-byte id + u32 size + u64 fee per transaction (44 bytes).
util::Bytes encode_txns(const std::vector<chain::Transaction>& txns) {
  util::ByteWriter w;
  util::write_varint(w, txns.size());
  for (const chain::Transaction& tx : txns) {
    w.raw(util::ByteView(tx.id.data(), tx.id.size()));
    w.u32(tx.size_bytes);
    w.u64(tx.fee_per_kb);
  }
  return w.take();
}

std::vector<chain::Transaction> decode_txns(util::ByteView data, const char* field) {
  constexpr std::size_t kTxBytes = 32 + 4 + 8;
  util::ByteReader reader(data);
  const std::uint64_t count =
      util::read_varint_bounded(reader, util::wire::kMaxWireCollection, field);
  if (count * kTxBytes > reader.remaining()) {
    throw util::DeserializeError(std::string(field) + ": snapshot shorter than its count");
  }
  std::vector<chain::Transaction> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    chain::Transaction tx;
    reader.raw_into(tx.id.data(), tx.id.size());
    tx.size_bytes = reader.u32();
    // A capture is replayed through the full protocol engines, where claimed
    // sizes pad re-serialized blocks — cap them like any other wire input.
    if (tx.size_bytes > util::wire::kMaxTxWireSize) {
      throw util::DeserializeError(std::string(field) +
                                   ": tx claimed size exceeds wire limit");
    }
    tx.fee_per_kb = reader.u64();
    out.push_back(tx);
  }
  return out;
}

/// 16-hex-digit big-endian encoding: JSON numbers are doubles and cannot
/// carry a full 64-bit salt, so it travels as a string.
std::string u64_hex(std::uint64_t v) {
  std::array<std::uint8_t, 8> be{};
  for (std::size_t i = 0; i < 8; ++i) {
    be[i] = static_cast<std::uint8_t>(v >> (8 * (7 - i)));
  }
  return util::to_hex(util::ByteView(be.data(), be.size()));
}

std::uint64_t hex_u64(const std::string& hex) {
  const util::Bytes be = util::from_hex(hex);
  if (be.size() != 8) throw util::DeserializeError("salt_hex: expected 16 hex digits");
  std::uint64_t v = 0;
  for (const std::uint8_t b : be) v = (v << 8) | b;
  return v;
}

std::uint64_t u64_field(const obs::json::Value& obj, const char* key) {
  return static_cast<std::uint64_t>(obj.at(key).number);
}

const char* status_code_label(int code) {
  switch (code) {
    case 0:
      return "decoded";
    case 1:
      return "needs_protocol2";
    case 2:
      return "needs_repair";
    case 3:
      return "failed";
    default:
      return "unknown";
  }
}

}  // namespace

ProtocolConfig ForensicCapture::config() const {
  ProtocolConfig cfg;
  cfg.beta = beta;
  cfg.fail_denom = fail_denom;
  cfg.keyed_short_ids = keyed_short_ids;
  cfg.near_equal_fpr = near_equal_fpr;
  cfg.enable_pingpong = enable_pingpong;
  cfg.bloom_strategy = static_cast<bloom::HashStrategy>(bloom_strategy);
  return cfg;
}

std::string ForensicCapture::to_json() const {
  using obs::json::escape_to;
  using obs::json::number_to;
  std::string o = "{\"schema\":\"";
  o += kSchema;
  o += "\",\"kind\":\"";
  escape_to(o, kind);
  o += "\",\"stage\":\"";
  escape_to(o, stage);
  o += "\",\"note\":\"";
  escape_to(o, note);
  o += "\",\"salt_hex\":\"";
  o += u64_hex(salt);
  o += "\",\"claimed_m\":";
  number_to(o, static_cast<double>(claimed_m));
  o += ",\"config\":{\"beta\":";
  number_to(o, beta);
  o += ",\"fail_denom\":";
  number_to(o, fail_denom);
  o += ",\"keyed_short_ids\":";
  o += keyed_short_ids ? "true" : "false";
  o += ",\"near_equal_fpr\":";
  number_to(o, near_equal_fpr);
  o += ",\"enable_pingpong\":";
  o += enable_pingpong ? "true" : "false";
  o += ",\"bloom_strategy\":";
  number_to(o, bloom_strategy);
  o += "},\"mempool_b64\":\"";
  o += util::base64_encode(encode_txns(mempool));
  o += '"';
  if (has_block) {
    o += ",\"block\":{\"header_b64\":\"";
    o += util::base64_encode(block_header.serialize());
    o += "\",\"txns_b64\":\"";
    o += util::base64_encode(encode_txns(block_txns));
    o += "\"}";
  }
  if (has_error) {
    o += ",\"error\":{\"have_block_msg\":";
    o += error.have_block_msg ? "true" : "false";
    o += ",\"n\":";
    number_to(o, static_cast<double>(error.n));
    o += ",\"m\":";
    number_to(o, static_cast<double>(error.m));
    o += ",\"z\":";
    number_to(o, static_cast<double>(error.z));
    o += ",\"x_star\":";
    number_to(o, static_cast<double>(error.x_star));
    o += ",\"y_star\":";
    number_to(o, static_cast<double>(error.y_star));
    o += ",\"b\":";
    number_to(o, static_cast<double>(error.b));
    o += '}';
  }
  o += ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) o += ',';
    o += events[i].to_json();
  }
  o += "]}";
  return o;
}

ForensicCapture ForensicCapture::from_json(std::string_view text) {
  const obs::json::Value doc = obs::json::parse(text);
  if (!doc.is_object()) throw obs::json::ParseError("capture: expected object");
  if (doc.at("schema").string != kSchema) {
    throw obs::json::ParseError("capture: unsupported schema \"" +
                                doc.at("schema").string + "\"");
  }
  ForensicCapture cap;
  cap.kind = doc.at("kind").string;
  cap.stage = doc.at("stage").string;
  cap.note = doc.at("note").string;
  cap.salt = hex_u64(doc.at("salt_hex").string);
  cap.claimed_m = u64_field(doc, "claimed_m");
  const obs::json::Value& cfg = doc.at("config");
  cap.beta = cfg.at("beta").number;
  cap.fail_denom = static_cast<std::uint32_t>(cfg.at("fail_denom").number);
  cap.keyed_short_ids = cfg.at("keyed_short_ids").boolean;
  cap.near_equal_fpr = cfg.at("near_equal_fpr").number;
  cap.enable_pingpong = cfg.at("enable_pingpong").boolean;
  cap.bloom_strategy = static_cast<std::uint8_t>(cfg.at("bloom_strategy").number);
  cap.mempool =
      decode_txns(util::base64_decode(doc.at("mempool_b64").string), "mempool_b64");
  if (doc.contains("block")) {
    const obs::json::Value& blk = doc.at("block");
    const util::Bytes header_bytes = util::base64_decode(blk.at("header_b64").string);
    util::ByteReader reader(header_bytes);
    cap.block_header = chain::BlockHeader::deserialize(reader);
    cap.block_txns =
        decode_txns(util::base64_decode(blk.at("txns_b64").string), "block.txns_b64");
    cap.has_block = true;
  }
  if (doc.contains("error")) {
    const obs::json::Value& err = doc.at("error");
    cap.error.have_block_msg = err.at("have_block_msg").boolean;
    cap.error.n = u64_field(err, "n");
    cap.error.m = u64_field(err, "m");
    cap.error.z = u64_field(err, "z");
    cap.error.x_star = u64_field(err, "x_star");
    cap.error.y_star = u64_field(err, "y_star");
    cap.error.b = u64_field(err, "b");
    cap.has_error = true;
  }
  const obs::json::Value& events = doc.at("events");
  if (!events.is_array()) throw obs::json::ParseError("capture: events must be an array");
  cap.events.reserve(events.array.size());
  for (const obs::json::Value& e : events.array) {
    cap.events.push_back(obs::FlightEvent::from_json(e));
  }
  return cap;
}

ForensicCapture make_capture(std::string kind, std::string stage,
                             const chain::Mempool& mempool, const ProtocolConfig& cfg,
                             std::uint64_t salt) {
  ForensicCapture cap;
  cap.kind = std::move(kind);
  cap.stage = std::move(stage);
  cap.salt = salt;
  cap.beta = cfg.beta;
  cap.fail_denom = cfg.fail_denom;
  cap.keyed_short_ids = cfg.keyed_short_ids;
  cap.near_equal_fpr = cfg.near_equal_fpr;
  cap.enable_pingpong = cfg.enable_pingpong;
  cap.bloom_strategy = static_cast<std::uint8_t>(cfg.bloom_strategy);
  cap.mempool = mempool.transactions();
  if (obs::Registry* reg = obs::enabled(cfg.obs)) {
    cap.events = reg->recorder().events();
  }
  return cap;
}

void attach_block(ForensicCapture& cap, const chain::Block& block,
                  std::uint64_t claimed_m) {
  cap.has_block = true;
  cap.block_header = block.header();
  cap.block_txns = block.transactions();
  cap.claimed_m = claimed_m;
}

std::string dump_capture(const ForensicCapture& cap, const std::string& dir) {
  // Process-wide counter keeps names unique without a clock (obs rule: no
  // direct chrono reads outside src/obs, and replay must be time-free).
  static std::atomic<std::uint64_t> seq{0};
  const std::uint64_t id = seq.fetch_add(1, std::memory_order_relaxed);
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += "graphene_capture_" + cap.kind + "_" + u64_hex(cap.salt) + "_" +
          std::to_string(id) + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("dump_capture: cannot open " + path);
  out << cap.to_json() << '\n';
  out.flush();
  if (!out) throw std::runtime_error("dump_capture: write failed for " + path);
  return path;
}

namespace {

std::uint64_t capture_limit() {
  static const std::uint64_t limit = [] {
    const char* env = std::getenv("GRAPHENE_CAPTURE_LIMIT");
    if (env != nullptr && *env != '\0') {
      const long long v = std::atoll(env);
      if (v > 0) return static_cast<std::uint64_t>(v);
    }
    return std::uint64_t{16};
  }();
  return limit;
}

std::atomic<std::uint64_t>& captures_dumped() {
  static std::atomic<std::uint64_t> dumped{0};
  return dumped;
}

}  // namespace

bool capture_enabled() {
  const char* dir = std::getenv("GRAPHENE_CAPTURE_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  return captures_dumped().load(std::memory_order_relaxed) < capture_limit();
}

std::optional<std::string> maybe_dump_capture(const ForensicCapture& cap) {
  const char* dir = std::getenv("GRAPHENE_CAPTURE_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  if (captures_dumped().fetch_add(1, std::memory_order_relaxed) >= capture_limit()) {
    return std::nullopt;
  }
  try {
    return dump_capture(cap, dir);
  } catch (...) {
    return std::nullopt;  // forensics must never take down the protocol path
  }
}

ReplayReport replay_capture(const ForensicCapture& cap) {
  ReplayReport rep;

  // Recorded outcome: the last decode/error event in the timeline.
  for (const obs::FlightEvent& e : cap.events) {
    if (e.kind == obs::FlightEventKind::kDecode) {
      rep.recorded_outcome =
          e.label + ":" + status_code_label(static_cast<int>(e.attr("status", -1)));
    } else if (e.kind == obs::FlightEventKind::kError) {
      rep.recorded_outcome = "error:" + e.label;
    }
  }
  if (rep.recorded_outcome.empty()) rep.recorded_outcome = cap.kind;

  chain::Mempool pool;
  for (const chain::Transaction& tx : cap.mempool) pool.insert(tx);
  const ProtocolConfig cfg = cap.config();
  ReceiveSession session(pool, cfg);
  std::optional<Sender> sender;
  if (cap.has_block) {
    sender.emplace(chain::Block(cap.block_header, cap.block_txns), cap.salt, cfg);
  }

  std::optional<GrapheneRequestMsg> last_req;
  RepairRequestMsg last_repair;
  int last_code = -1;
  std::string last_stage;
  std::string err_stage;

  const auto compare = [&rep](const util::Bytes& got, const obs::FlightEvent& e,
                              const char* what) {
    if (e.wire.empty()) return;  // recorded without wire capture
    if (got != e.wire) {
      rep.bytes_match = false;
      rep.notes.push_back(std::string(what) + ": regenerated " +
                          std::to_string(got.size()) + " bytes != recorded " +
                          std::to_string(e.wire.size()) + " bytes");
    }
  };

  for (const obs::FlightEvent& e : cap.events) {
    try {
      switch (e.kind) {
        case obs::FlightEventKind::kMsgReceived: {
          if (e.label != "grblk" && e.label != "grresp" && e.label != "blocktxn") break;
          if (e.wire.empty()) {
            rep.notes.push_back(e.label + ": recorded without wire bytes; cannot replay");
            break;
          }
          util::ByteReader reader(e.wire);
          if (e.label == "grblk") {
            const GrapheneBlockMsg msg = GrapheneBlockMsg::deserialize(reader);
            last_code = static_cast<int>(session.receive_block(msg).status);
            last_stage = "p1";
          } else if (e.label == "grresp") {
            const GrapheneResponseMsg resp = GrapheneResponseMsg::deserialize(reader);
            last_code = static_cast<int>(session.complete(resp).status);
            last_stage = "p2";
          } else {
            const RepairResponseMsg resp = RepairResponseMsg::deserialize(reader);
            last_code = static_cast<int>(session.complete_repair(resp).status);
            last_stage = "repair";
          }
          rep.ran = true;
          break;
        }
        case obs::FlightEventKind::kMsgSent: {
          if (e.label == "grreq") {
            GrapheneRequestMsg req = session.build_request();
            compare(req.serialize(), e, "grreq");
            last_req = std::move(req);
            rep.ran = true;
          } else if (e.label == "getblocktxn") {
            last_repair = session.build_repair();
            compare(last_repair.serialize(), e, "getblocktxn");
            rep.ran = true;
          } else if (sender.has_value() && e.label == "grblk") {
            const auto m = static_cast<std::uint64_t>(
                e.attr("m", static_cast<double>(cap.claimed_m)));
            compare(sender->encode(m).msg.serialize(), e, "grblk");
            rep.ran = true;
          } else if (sender.has_value() && e.label == "grresp" && last_req.has_value()) {
            compare(sender->serve(*last_req).serialize(), e, "grresp");
            rep.ran = true;
          } else if (sender.has_value() && e.label == "blocktxn") {
            compare(sender->serve_repair(last_repair).serialize(), e, "blocktxn");
            rep.ran = true;
          }
          break;
        }
        case obs::FlightEventKind::kDecode: {
          const int want = static_cast<int>(e.attr("status", -1));
          if (want != last_code) {
            rep.outcome_match = false;
            rep.notes.push_back(e.label + ": recorded " + status_code_label(want) +
                                ", replayed " + status_code_label(last_code));
          }
          break;
        }
        case obs::FlightEventKind::kError: {
          if (err_stage != e.label) {
            rep.outcome_match = false;
            rep.notes.push_back("recorded ProtocolError at " + e.label + ", replay " +
                                (err_stage.empty() ? std::string("did not throw")
                                                   : "threw at " + err_stage));
          }
          break;
        }
        case obs::FlightEventKind::kNote:
          break;  // link traffic, repair triggers — informational only
      }
    } catch (const ProtocolError& pe) {
      err_stage = pe.stage();
      rep.ran = true;
    } catch (const util::DeserializeError&) {
      // Corrupt recorded wire (a FaultyChannel capture): the replayed parse
      // fails exactly like the original did — recorded as a "channel" error.
      err_stage = "channel";
      rep.ran = true;
    }
  }

  if (!err_stage.empty()) {
    rep.replayed_outcome = "error:" + err_stage;
  } else if (last_code >= 0) {
    rep.replayed_outcome = last_stage + ":" + status_code_label(last_code);
  } else {
    rep.replayed_outcome = "nothing-replayed";
  }
  return rep;
}

}  // namespace graphene::core
