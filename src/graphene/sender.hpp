// Sender-side protocol engine (Protocols 1 and 2, §3.1–§3.2).
#pragma once

#include <unordered_map>

#include "chain/block.hpp"
#include "graphene/messages.hpp"
#include "graphene/params.hpp"

namespace graphene::core {

/// Result of one Protocol 1 encode: the wire message plus the parameters it
/// was sized with. Returning both (instead of stashing the params on the
/// Sender) keeps encode() a pure const call, so one Sender can serve many
/// receivers from pool threads concurrently.
struct EncodeResult {
  GrapheneBlockMsg msg;
  Protocol1Params params;
};

class Sender {
 public:
  /// `salt` keys the block's short IDs; a real deployment derives it per
  /// block (BIP-152 style). Pass a fresh value per block.
  Sender(chain::Block block, std::uint64_t salt, ProtocolConfig cfg = {});

  /// Protocol 1, step 3: builds S and I for a receiver holding
  /// `receiver_mempool_count` transactions. Thread-safe: distinct peers may
  /// be encoded for concurrently from one Sender.
  [[nodiscard]] EncodeResult encode(std::uint64_t receiver_mempool_count) const;

  /// Protocol 2, steps 3–4: answers a repair request (handles both the
  /// normal and the m ≈ n reversed path).
  [[nodiscard]] GrapheneResponseMsg serve(const GrapheneRequestMsg& request) const;

  /// Final repair round: returns the full transactions for any short IDs
  /// the receiver decoded but does not hold.
  [[nodiscard]] RepairResponseMsg serve_repair(const RepairRequestMsg& request) const;

  [[nodiscard]] const chain::Block& block() const noexcept { return block_; }
  [[nodiscard]] std::uint64_t salt() const noexcept { return salt_; }

 private:
  chain::Block block_;
  std::uint64_t salt_;
  ProtocolConfig cfg_;
  std::vector<std::uint64_t> short_ids_;  // aligned with block_.transactions()
  std::unordered_map<std::uint64_t, const chain::Transaction*> by_short_id_;
};

/// Short-ID derivation shared by sender and receiver: SipHash-keyed under
/// `salt` when cfg.keyed_short_ids, else the txid's first 8 bytes.
[[nodiscard]] std::uint64_t derive_short_id(const chain::TxId& id, std::uint64_t salt,
                                            const ProtocolConfig& cfg) noexcept;

}  // namespace graphene::core
