#include "graphene/receiver.hpp"

#include <span>

#include <algorithm>

#include "bloom/bloom_math.hpp"
#include "chain/merkle.hpp"
#include "graphene/errors.hpp"
#include "graphene/forensics.hpp"
#include "graphene/sender.hpp"  // derive_short_id
#include "iblt/pingpong.hpp"
#include "obs/obs.hpp"
#include "util/arena.hpp"
#include "util/thread_pool.hpp"

namespace graphene::core {

const char* to_string(ReceiveStatus status) noexcept {
  switch (status) {
    case ReceiveStatus::kDecoded: return "decoded";
    case ReceiveStatus::kNeedsProtocol2: return "needs_protocol2";
    case ReceiveStatus::kNeedsRepair: return "needs_repair";
    case ReceiveStatus::kFailed: return "failed";
  }
  return "unknown";
}

namespace {

/// Label value for the per-outcome decode counters.
const char* status_label(ReceiveStatus status) noexcept { return to_string(status); }

/// Batch-queries `filter` over `ids` (chunk-parallel when `pool` is set);
/// out[i] = 1 iff ids[i] passes. The hit pattern is identical to querying
/// one id at a time.
std::span<const std::uint8_t> scan_ids(const bloom::BloomFilter& filter,
                                       const std::vector<chain::TxId>& ids,
                                       util::ThreadPool* pool,
                                       util::ScratchScope& scratch) {
  const std::span<util::ByteView> views = scratch.span<util::ByteView>(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    views[i] = util::ByteView(ids[i].data(), ids[i].size());
  }
  const std::span<std::uint8_t> hit = scratch.span<std::uint8_t>(ids.size());
  bloom::contains_all(filter, views.data(), views.size(), hit.data(), pool);
  return hit;
}

}  // namespace

ReceiveSession::ReceiveSession(const chain::Mempool& mempool, ProtocolConfig cfg)
    : mempool_(&mempool), cfg_(cfg) {}

Receiver::Receiver(const chain::Mempool& mempool, ProtocolConfig cfg)
    : mempool_(&mempool), cfg_(cfg) {}

std::uint64_t ReceiveSession::sid(const chain::TxId& id) const noexcept {
  return derive_short_id(id, msg_.shortid_salt, cfg_);
}

void ReceiveSession::index_candidate(const chain::TxId& id) {
  const std::uint64_t s = sid(id);
  const auto [it, inserted] = sid_to_txid_.emplace(s, id);
  if (!inserted && it->second != id) ambiguous_sids_.insert(s);
  candidates_.insert(id);
}

ReceiveOutcome ReceiveSession::receive_block(const GrapheneBlockMsg& msg) {
  obs::Registry* reg = obs::enabled(cfg_.obs);
  if (obs::FlightRecorder* fr = obs::flight(reg)) {
    obs::FlightEvent e;
    e.kind = obs::FlightEventKind::kMsgReceived;
    e.label = "grblk";
    if (fr->wire_capture()) e.wire = msg.serialize();
    e.attrs = {{"n", static_cast<double>(msg.n)},
               {"m", static_cast<double>(mempool_->size())},
               {"bloom_bytes", static_cast<double>(msg.filter_s.serialized_size())},
               {"fpr_s", msg.filter_s.target_fpr()},
               {"iblt_cells", static_cast<double>(msg.iblt_i.cell_count())},
               {"iblt_bytes", static_cast<double>(msg.iblt_i.serialized_size())}};
    fr->record(std::move(e));
  }
  msg_ = msg;
  have_block_msg_ = true;
  sid_to_txid_.clear();
  ambiguous_sids_.clear();
  candidates_.clear();
  received_txns_.clear();
  pending_unresolved_.clear();

  {
    // Step 4: the candidate set Z = mempool transactions passing S.
    obs::ScopedSpan span(reg, "p1_candidates");
    const std::uint64_t queries_before = msg.filter_s.query_count();
    const std::uint64_t hits_before = msg.filter_s.hit_count();
    // Membership runs through the batch scan (chunk-parallel with a pool);
    // candidate indexing stays serial and in mempool order, so the session
    // state matches the one-query-at-a-time loop exactly.
    const std::vector<chain::TxId> ids = mempool_->ids();
    util::ScratchScope scratch;  // session scan scratch, recycled per relay
    const std::span<const std::uint8_t> hit =
        scan_ids(msg.filter_s, ids, cfg_.pool, scratch);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (hit[i] != 0) index_candidate(ids[i]);
    }
    z_ = candidates_.size();
    span.attr("m", mempool_->size());
    span.attr("n", msg.n);
    span.attr("z", z_);
    span.attr("target_fpr", msg.filter_s.target_fpr());
    span.attr("filter_queries", msg.filter_s.query_count() - queries_before);
    span.attr("filter_hits", msg.filter_s.hit_count() - hits_before);
  }

  ReceiveOutcome out;
  std::uint64_t peel_iterations = 0;
  std::uint64_t peeled_items = 0;
  std::uint64_t residual_cells = 0;
  {
    obs::ScopedSpan span(reg, "p1_peel");
    // I′ over Z with the sender's parameters, then I ⊖ I′.
    iblt::Iblt i_prime(iblt::IbltParams{msg.iblt_i.hash_count(), msg.iblt_i.cell_count()},
                       msg.iblt_i.seed());
    std::vector<std::uint64_t> sids;
    sids.reserve(candidates_.size());
    for (const chain::TxId& id : candidates_) sids.push_back(sid(id));
    i_prime.insert_all(sids, cfg_.pool);

    const iblt::DecodeResult dec = msg.iblt_i.subtract(i_prime, cfg_.pool).decode();
    peel_iterations = dec.peel_iterations;
    peeled_items = dec.peeled();
    residual_cells = dec.residual_cells;
    span.attr("cells", msg.iblt_i.cell_count());
    span.attr("k", msg.iblt_i.hash_count());
    span.attr("peel_iterations", dec.peel_iterations);
    span.attr("peeled", dec.peeled());
    span.attr("residual_cells", dec.residual_cells);
    span.attr("success", dec.success ? 1 : 0);
    span.attr("malformed", dec.malformed ? 1 : 0);
    if (reg != nullptr) {
      reg->histogram("graphene_peel_iterations", {{"iblt", "i"}})
          .observe(dec.peel_iterations);
    }

    if (dec.malformed) {
      out.status = ReceiveStatus::kFailed;
    } else if (!dec.success || !dec.positives.empty()) {
      // Either the IBLT kept a 2-core, or the block contains transactions the
      // receiver does not hold (positives carry only short IDs) — Protocol 2.
      out.status = ReceiveStatus::kNeedsProtocol2;
    } else {
      out.status = ReceiveStatus::kDecoded;  // provisional; negatives next
      for (const std::uint64_t s : dec.negatives) {
        if (ambiguous_sids_.count(s) > 0) {
          out.status = ReceiveStatus::kNeedsProtocol2;
          break;
        }
        const auto it = sid_to_txid_.find(s);
        if (it == sid_to_txid_.end()) {
          out.status = ReceiveStatus::kNeedsProtocol2;
          break;
        }
        candidates_.erase(it->second);
      }
    }
  }

  if (out.status == ReceiveStatus::kDecoded) {
    out = finalize({}, /*used_pingpong=*/false);
    if (out.status != ReceiveStatus::kDecoded) out.status = ReceiveStatus::kNeedsProtocol2;
  }
  if (reg != nullptr) {
    reg->counter("graphene_p1_decode_total", {{"result", status_label(out.status)}})
        .inc();
  }
  if (obs::FlightRecorder* fr = obs::flight(reg)) {
    obs::FlightEvent e;
    e.kind = obs::FlightEventKind::kDecode;
    e.label = "p1";
    e.attrs = {{"status", static_cast<double>(static_cast<int>(out.status))},
               {"z", static_cast<double>(z_)},
               {"peel_iterations", static_cast<double>(peel_iterations)},
               {"peeled", static_cast<double>(peeled_items)},
               {"residual_cells", static_cast<double>(residual_cells)}};
    fr->record(std::move(e));
  }
  if (out.status == ReceiveStatus::kFailed) dump_failure("decode_failure", "p1_peel");
  return out;
}

ErrorContext ReceiveSession::error_context() const noexcept {
  ErrorContext ctx;
  ctx.have_block_msg = have_block_msg_;
  ctx.n = msg_.n;
  ctx.m = mempool_->size();
  ctx.z = z_;
  ctx.x_star = params2_.x_star;
  ctx.y_star = params2_.y_star;
  ctx.b = params2_.b;
  return ctx;
}

void ReceiveSession::raise(const char* stage, const char* what) const {
  const ErrorContext ctx = error_context();
  if (obs::Registry* reg = obs::enabled(cfg_.obs)) {
    obs::ScopedSpan span(reg, "error");
    span.attr("have_block_msg", ctx.have_block_msg ? 1 : 0);
    span.attr("n", ctx.n);
    span.attr("m", ctx.m);
    span.attr("z", ctx.z);
    span.attr("x_star", ctx.x_star);
    span.attr("y_star", ctx.y_star);
    span.attr("b", ctx.b);
    reg->counter("graphene_protocol_errors_total", {{"stage", stage}}).inc();
    if (obs::FlightRecorder* fr = obs::flight(reg)) {
      obs::FlightEvent e;
      e.kind = obs::FlightEventKind::kError;
      e.label = stage;
      e.attrs = {{"have_block_msg", ctx.have_block_msg ? 1.0 : 0.0},
                 {"n", static_cast<double>(ctx.n)},
                 {"m", static_cast<double>(ctx.m)},
                 {"z", static_cast<double>(ctx.z)},
                 {"x_star", static_cast<double>(ctx.x_star)},
                 {"y_star", static_cast<double>(ctx.y_star)},
                 {"b", static_cast<double>(ctx.b)}};
      fr->record(std::move(e));
    }
  }
  dump_failure("protocol_error", stage);
  throw ProtocolError(stage, what, ctx);
}

void ReceiveSession::dump_failure(const char* kind, const char* stage) const {
  if (obs::Registry* reg = obs::enabled(cfg_.obs); reg != nullptr && capture_enabled()) {
    ForensicCapture cap = make_capture(kind, stage, *mempool_, cfg_, msg_.shortid_salt);
    cap.has_error = true;
    cap.error = error_context();
    if (maybe_dump_capture(cap).has_value()) {
      reg->counter("graphene_captures_total", {{"kind", kind}}).inc();
    }
  }
}

GrapheneRequestMsg ReceiveSession::build_request() {
  obs::Registry* reg = obs::enabled(cfg_.obs);
  if (!have_block_msg_) {
    raise("build_request", "no block message received");
  }
  const std::uint64_t z = candidates_.size();
  const double f_s =
      bloom::expected_fpr(msg_.filter_s.bit_count(), msg_.filter_s.hash_count(), msg_.n);
  {
    // Theorem-2/3 bound computation plus the b-optimization of §3.3.2.
    obs::ScopedSpan span(reg, "thm_bounds");
    params2_ = optimize_protocol2(z, mempool_->size(), msg_.n, f_s, cfg_);
    span.attr("z", z);
    span.attr("m", mempool_->size());
    span.attr("n", msg_.n);
    span.attr("f_s", f_s);
    span.attr("x_star", params2_.x_star);
    span.attr("y_star", params2_.y_star);
    span.attr("b", params2_.b);
    span.attr("fpr_r", params2_.fpr);
    span.attr("reversed", params2_.reversed ? 1 : 0);
  }

  GrapheneRequestMsg req;
  req.z = z;
  req.b = params2_.b;
  req.y_star = params2_.y_star;
  req.fpr_r = params2_.fpr;
  req.reversed = params2_.reversed;
  {
    obs::ScopedSpan span(reg, "rfilter_build");
    req.filter_r =
        bloom::BloomFilter(std::max<std::uint64_t>(z, 1), params2_.fpr,
                           /*seed=*/msg_.shortid_salt ^ 0x42d551f17e1dULL,
                           cfg_.bloom_strategy);
    util::ScratchScope scratch;
    const std::span<util::ByteView> views =
        scratch.span<util::ByteView>(candidates_.size());
    std::size_t at = 0;
    for (const chain::TxId& id : candidates_) {
      views[at++] = util::ByteView(id.data(), id.size());
    }
    req.filter_r.insert_batch(views.data(), views.size());
    span.attr("items", z);
    span.attr("bits", req.filter_r.bit_count());
  }
  if (reg != nullptr) {
    reg->histogram("graphene_bloom_r_bytes").observe(req.filter_r.serialized_size());
  }
  if (obs::FlightRecorder* fr = obs::flight(reg)) {
    obs::FlightEvent e;
    e.kind = obs::FlightEventKind::kMsgSent;
    e.label = "grreq";
    if (fr->wire_capture()) e.wire = req.serialize();
    e.attrs = {{"z", static_cast<double>(z)},
               {"b", static_cast<double>(params2_.b)},
               {"x_star", static_cast<double>(params2_.x_star)},
               {"y_star", static_cast<double>(params2_.y_star)},
               {"fpr_r", params2_.fpr},
               {"reversed", params2_.reversed ? 1.0 : 0.0},
               {"bloom_bytes", static_cast<double>(req.filter_r.serialized_size())}};
    fr->record(std::move(e));
  }
  return req;
}

ReceiveOutcome ReceiveSession::complete(const GrapheneResponseMsg& resp) {
  obs::Registry* reg = obs::enabled(cfg_.obs);
  ReceiveOutcome out;
  if (!have_block_msg_) return out;  // kFailed: nothing to complete
  obs::ScopedSpan p2_span(reg, "p2_peel");
  p2_span.attr("missing", resp.missing.size());

  if (obs::FlightRecorder* fr = obs::flight(reg)) {
    obs::FlightEvent e;
    e.kind = obs::FlightEventKind::kMsgReceived;
    e.label = "grresp";
    if (fr->wire_capture()) e.wire = resp.serialize();
    e.attrs = {{"missing", static_cast<double>(resp.missing.size())},
               {"missing_tx_bytes", static_cast<double>(resp.missing_tx_bytes())},
               {"j_cells", static_cast<double>(resp.iblt_j.cell_count())},
               {"j_bytes", static_cast<double>(resp.iblt_j.serialized_size())},
               {"has_filter_f", resp.filter_f.has_value() ? 1.0 : 0.0}};
    fr->record(std::move(e));
  }
  std::uint64_t pingpong_rounds = 0;
  // Every exit routes through here so the decode outcome — the thing a
  // forensic replay must reproduce — always lands in the flight log.
  const auto finish = [&](ReceiveOutcome o) {
    if (obs::FlightRecorder* fr = obs::flight(reg)) {
      obs::FlightEvent e;
      e.kind = obs::FlightEventKind::kDecode;
      e.label = "p2";
      e.attrs = {{"status", static_cast<double>(static_cast<int>(o.status))},
                 {"used_pingpong", o.used_pingpong ? 1.0 : 0.0},
                 {"pingpong_rounds", static_cast<double>(pingpong_rounds)},
                 {"unresolved", static_cast<double>(o.unresolved.size())}};
      fr->record(std::move(e));
      if (o.status == ReceiveStatus::kNeedsRepair) {
        obs::FlightEvent trigger;
        trigger.kind = obs::FlightEventKind::kNote;
        trigger.label = "repair_trigger";
        trigger.attrs = {{"unresolved", static_cast<double>(o.unresolved.size())}};
        fr->record(std::move(trigger));
      }
    }
    if (o.status == ReceiveStatus::kFailed) dump_failure("decode_failure", "p2_peel");
    return o;
  };

  // In the reversed (m ≈ n) path, filter F prunes candidates the sender's
  // block does not contain before the new transactions are added.
  if (params2_.reversed && resp.filter_f.has_value()) {
    const std::vector<chain::TxId> cand(candidates_.begin(), candidates_.end());
    util::ScratchScope scratch;
    const std::span<const std::uint8_t> hit =
        scan_ids(*resp.filter_f, cand, cfg_.pool, scratch);
    for (std::size_t i = 0; i < cand.size(); ++i) {
      if (hit[i] == 0) candidates_.erase(cand[i]);
    }
  }

  // Step 5: fold in the directly-sent transactions.
  for (const chain::Transaction& tx : resp.missing) {
    received_txns_.emplace(tx.id, tx);
    index_candidate(tx.id);
  }

  // J′ over the updated candidate set; then J ⊖ J′.
  iblt::Iblt j_prime(iblt::IbltParams{resp.iblt_j.hash_count(), resp.iblt_j.cell_count()},
                     resp.iblt_j.seed());
  {
    std::vector<std::uint64_t> sids;
    sids.reserve(candidates_.size());
    for (const chain::TxId& id : candidates_) sids.push_back(sid(id));
    j_prime.insert_all(sids, cfg_.pool);
  }
  const iblt::Iblt diff_j = resp.iblt_j.subtract(j_prime, cfg_.pool);

  iblt::DecodeResult dec = diff_j.decode();
  bool used_pingpong = false;
  p2_span.attr("j_cells", resp.iblt_j.cell_count());
  p2_span.attr("peel_iterations", dec.peel_iterations);
  p2_span.attr("peeled", dec.peeled());
  p2_span.attr("residual_cells", dec.residual_cells);
  p2_span.attr("success", dec.success ? 1 : 0);
  if (reg != nullptr) {
    reg->histogram("graphene_peel_iterations", {{"iblt", "j"}})
        .observe(dec.peel_iterations);
  }

  if (dec.malformed) {
    out.status = ReceiveStatus::kFailed;
    return finish(std::move(out));
  }
  if (!dec.success && have_block_msg_ && cfg_.enable_pingpong) {
    // Ping-pong (§4.2): rebuild I′ over the *current* candidates so both
    // differences describe the same set pair, then decode jointly.
    obs::ScopedSpan pp_span(reg, "pingpong");
    iblt::Iblt i_prime(
        iblt::IbltParams{msg_.iblt_i.hash_count(), msg_.iblt_i.cell_count()},
        msg_.iblt_i.seed());
    std::vector<std::uint64_t> sids;
    sids.reserve(candidates_.size());
    for (const chain::TxId& id : candidates_) sids.push_back(sid(id));
    i_prime.insert_all(sids, cfg_.pool);
    const iblt::PingPongResult pp =
        iblt::pingpong_decode(diff_j, msg_.iblt_i.subtract(i_prime, cfg_.pool));
    pingpong_rounds = pp.rounds;
    pp_span.attr("rounds", pp.rounds);
    pp_span.attr("success", pp.success ? 1 : 0);
    pp_span.attr("malformed", pp.malformed ? 1 : 0);
    if (reg != nullptr) {
      reg->histogram("graphene_pingpong_rounds").observe(pp.rounds);
      reg->counter("graphene_pingpong_total",
                   {{"result", pp.success ? "rescued" : "failed"}})
          .inc();
    }
    if (pp.malformed) {
      out.status = ReceiveStatus::kFailed;
      return finish(std::move(out));
    }
    used_pingpong = true;
    dec.success = pp.success;
    dec.positives = pp.positives;
    dec.negatives = pp.negatives;
  }
  if (!dec.success) {
    out.status = ReceiveStatus::kFailed;
    out.used_pingpong = used_pingpong;
    return finish(std::move(out));
  }

  for (const std::uint64_t s : dec.negatives) {
    if (ambiguous_sids_.count(s) > 0) {
      out.status = ReceiveStatus::kFailed;
      return finish(std::move(out));
    }
    const auto it = sid_to_txid_.find(s);
    if (it != sid_to_txid_.end()) candidates_.erase(it->second);
  }

  std::vector<std::uint64_t> unresolved;
  for (const std::uint64_t s : dec.positives) {
    const auto it = sid_to_txid_.find(s);
    if (it != sid_to_txid_.end() && ambiguous_sids_.count(s) == 0) {
      // The receiver holds this transaction after all (it was pruned by F or
      // never passed S); restore it.
      if (mempool_->contains(it->second) || received_txns_.count(it->second) > 0) {
        candidates_.insert(it->second);
        continue;
      }
    }
    unresolved.push_back(s);
  }

  out = finalize(std::move(unresolved), used_pingpong);
  if (reg != nullptr) {
    reg->counter("graphene_p2_decode_total", {{"result", status_label(out.status)}})
        .inc();
  }
  return finish(std::move(out));
}

RepairRequestMsg ReceiveSession::build_repair() const {
  RepairRequestMsg req;
  req.short_ids = pending_unresolved_;
  if (obs::FlightRecorder* fr = obs::flight(obs::enabled(cfg_.obs))) {
    obs::FlightEvent e;
    e.kind = obs::FlightEventKind::kMsgSent;
    e.label = "getblocktxn";
    if (fr->wire_capture()) e.wire = req.serialize();
    e.attrs = {{"short_ids", static_cast<double>(req.short_ids.size())}};
    fr->record(std::move(e));
  }
  return req;
}

ReceiveOutcome ReceiveSession::complete_repair(const RepairResponseMsg& resp) {
  obs::Registry* reg = obs::enabled(cfg_.obs);
  obs::ScopedSpan span(reg, "repair");
  span.attr("requested", pending_unresolved_.size());
  span.attr("received", resp.txns.size());
  if (obs::FlightRecorder* fr = obs::flight(reg)) {
    obs::FlightEvent e;
    e.kind = obs::FlightEventKind::kMsgReceived;
    e.label = "blocktxn";
    if (fr->wire_capture()) e.wire = resp.serialize();
    e.attrs = {{"requested", static_cast<double>(pending_unresolved_.size())},
               {"txns", static_cast<double>(resp.txns.size())}};
    fr->record(std::move(e));
  }
  for (const chain::Transaction& tx : resp.txns) {
    received_txns_.emplace(tx.id, tx);
    index_candidate(tx.id);
  }
  const ReceiveOutcome out = finalize({}, /*used_pingpong=*/false);
  span.attr("decoded", out.status == ReceiveStatus::kDecoded ? 1 : 0);
  if (obs::FlightRecorder* fr = obs::flight(reg)) {
    obs::FlightEvent e;
    e.kind = obs::FlightEventKind::kDecode;
    e.label = "repair";
    e.attrs = {{"status", static_cast<double>(static_cast<int>(out.status))},
               {"merkle_ok", out.merkle_ok ? 1.0 : 0.0}};
    fr->record(std::move(e));
  }
  if (out.status == ReceiveStatus::kFailed) dump_failure("decode_failure", "repair");
  return out;
}

ReceiveOutcome ReceiveSession::finalize(std::vector<std::uint64_t> unresolved, bool used_pingpong) {
  ReceiveOutcome out;
  out.used_pingpong = used_pingpong;
  if (!unresolved.empty()) {
    pending_unresolved_ = std::move(unresolved);
    out.unresolved = pending_unresolved_;
    out.status = ReceiveStatus::kNeedsRepair;
    return out;
  }
  pending_unresolved_.clear();

  std::vector<chain::TxId> ids(candidates_.begin(), candidates_.end());
  std::sort(ids.begin(), ids.end());
  out.merkle_ok =
      ids.size() == msg_.n && chain::merkle_root(ids) == msg_.header.merkle_root;
  if (out.merkle_ok) {
    out.block_ids = std::move(ids);
    out.status = ReceiveStatus::kDecoded;
  } else {
    out.status = ReceiveStatus::kFailed;
  }
  return out;
}

std::vector<chain::Transaction> ReceiveSession::block_transactions() const {
  std::vector<chain::Transaction> out;
  out.reserve(candidates_.size());
  for (const chain::TxId& id : candidates_) {
    if (const auto tx = mempool_->get(id)) {
      out.push_back(*tx);
    } else if (const auto it = received_txns_.find(id); it != received_txns_.end()) {
      out.push_back(it->second);
    }
  }
  std::sort(out.begin(), out.end(), chain::CtorLess{});
  return out;
}

}  // namespace graphene::core
