#include "graphene/receiver.hpp"

#include <algorithm>
#include <stdexcept>

#include "bloom/bloom_math.hpp"
#include "chain/merkle.hpp"
#include "graphene/sender.hpp"  // derive_short_id
#include "iblt/pingpong.hpp"

namespace graphene::core {

Receiver::Receiver(const chain::Mempool& mempool, ProtocolConfig cfg)
    : mempool_(&mempool), cfg_(cfg) {}

std::uint64_t Receiver::sid(const chain::TxId& id) const noexcept {
  return derive_short_id(id, msg_.shortid_salt, cfg_);
}

void Receiver::index_candidate(const chain::TxId& id) {
  const std::uint64_t s = sid(id);
  const auto [it, inserted] = sid_to_txid_.emplace(s, id);
  if (!inserted && it->second != id) ambiguous_sids_.insert(s);
  candidates_.insert(id);
}

ReceiveOutcome Receiver::receive_block(const GrapheneBlockMsg& msg) {
  msg_ = msg;
  have_block_msg_ = true;
  sid_to_txid_.clear();
  ambiguous_sids_.clear();
  candidates_.clear();
  received_txns_.clear();
  pending_unresolved_.clear();

  // Step 4: the candidate set Z = mempool transactions passing S.
  for (const chain::TxId& id : mempool_->ids()) {
    if (msg.filter_s.contains(util::ByteView(id.data(), id.size()))) {
      index_candidate(id);
    }
  }

  // I′ over Z with the sender's parameters, then I ⊖ I′.
  iblt::Iblt i_prime(iblt::IbltParams{msg.iblt_i.hash_count(), msg.iblt_i.cell_count()},
                     msg.iblt_i.seed());
  for (const chain::TxId& id : candidates_) i_prime.insert(sid(id));

  const iblt::DecodeResult dec = msg.iblt_i.subtract(i_prime).decode();
  ReceiveOutcome out;
  if (dec.malformed) {
    out.status = ReceiveStatus::kFailed;
    return out;
  }
  if (!dec.success || !dec.positives.empty()) {
    // Either the IBLT kept a 2-core, or the block contains transactions the
    // receiver does not hold (positives carry only short IDs) — Protocol 2.
    out.status = ReceiveStatus::kNeedsProtocol2;
    return out;
  }
  for (const std::uint64_t s : dec.negatives) {
    if (ambiguous_sids_.count(s) > 0) {
      out.status = ReceiveStatus::kNeedsProtocol2;
      return out;
    }
    const auto it = sid_to_txid_.find(s);
    if (it == sid_to_txid_.end()) {
      out.status = ReceiveStatus::kNeedsProtocol2;
      return out;
    }
    candidates_.erase(it->second);
  }

  ReceiveOutcome fin = finalize({}, /*used_pingpong=*/false);
  if (fin.status != ReceiveStatus::kDecoded) fin.status = ReceiveStatus::kNeedsProtocol2;
  return fin;
}

GrapheneRequestMsg Receiver::build_request() {
  if (!have_block_msg_) {
    throw std::logic_error("Receiver::build_request: no block message received");
  }
  const std::uint64_t z = candidates_.size();
  const double f_s =
      bloom::expected_fpr(msg_.filter_s.bit_count(), msg_.filter_s.hash_count(), msg_.n);
  params2_ = optimize_protocol2(z, mempool_->size(), msg_.n, f_s, cfg_);

  GrapheneRequestMsg req;
  req.z = z;
  req.b = params2_.b;
  req.y_star = params2_.y_star;
  req.fpr_r = params2_.fpr;
  req.reversed = params2_.reversed;
  req.filter_r =
      bloom::BloomFilter(std::max<std::uint64_t>(z, 1), params2_.fpr,
                         /*seed=*/msg_.shortid_salt ^ 0x42d551f17e1dULL);
  for (const chain::TxId& id : candidates_) {
    req.filter_r.insert(util::ByteView(id.data(), id.size()));
  }
  return req;
}

ReceiveOutcome Receiver::complete(const GrapheneResponseMsg& resp) {
  ReceiveOutcome out;
  if (!have_block_msg_) return out;  // kFailed: nothing to complete

  // In the reversed (m ≈ n) path, filter F prunes candidates the sender's
  // block does not contain before the new transactions are added.
  if (params2_.reversed && resp.filter_f.has_value()) {
    for (auto it = candidates_.begin(); it != candidates_.end();) {
      if (!resp.filter_f->contains(util::ByteView(it->data(), it->size()))) {
        it = candidates_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Step 5: fold in the directly-sent transactions.
  for (const chain::Transaction& tx : resp.missing) {
    received_txns_.emplace(tx.id, tx);
    index_candidate(tx.id);
  }

  // J′ over the updated candidate set; then J ⊖ J′.
  iblt::Iblt j_prime(iblt::IbltParams{resp.iblt_j.hash_count(), resp.iblt_j.cell_count()},
                     resp.iblt_j.seed());
  for (const chain::TxId& id : candidates_) j_prime.insert(sid(id));
  const iblt::Iblt diff_j = resp.iblt_j.subtract(j_prime);

  iblt::DecodeResult dec = diff_j.decode();
  bool used_pingpong = false;

  if (dec.malformed) {
    out.status = ReceiveStatus::kFailed;
    return out;
  }
  if (!dec.success && have_block_msg_ && cfg_.enable_pingpong) {
    // Ping-pong (§4.2): rebuild I′ over the *current* candidates so both
    // differences describe the same set pair, then decode jointly.
    iblt::Iblt i_prime(
        iblt::IbltParams{msg_.iblt_i.hash_count(), msg_.iblt_i.cell_count()},
        msg_.iblt_i.seed());
    for (const chain::TxId& id : candidates_) i_prime.insert(sid(id));
    const iblt::PingPongResult pp =
        iblt::pingpong_decode(diff_j, msg_.iblt_i.subtract(i_prime));
    if (pp.malformed) {
      out.status = ReceiveStatus::kFailed;
      return out;
    }
    used_pingpong = true;
    dec.success = pp.success;
    dec.positives = pp.positives;
    dec.negatives = pp.negatives;
  }
  if (!dec.success) {
    out.status = ReceiveStatus::kFailed;
    out.used_pingpong = used_pingpong;
    return out;
  }

  for (const std::uint64_t s : dec.negatives) {
    if (ambiguous_sids_.count(s) > 0) {
      out.status = ReceiveStatus::kFailed;
      return out;
    }
    const auto it = sid_to_txid_.find(s);
    if (it != sid_to_txid_.end()) candidates_.erase(it->second);
  }

  std::vector<std::uint64_t> unresolved;
  for (const std::uint64_t s : dec.positives) {
    const auto it = sid_to_txid_.find(s);
    if (it != sid_to_txid_.end() && ambiguous_sids_.count(s) == 0) {
      // The receiver holds this transaction after all (it was pruned by F or
      // never passed S); restore it.
      if (mempool_->contains(it->second) || received_txns_.count(it->second) > 0) {
        candidates_.insert(it->second);
        continue;
      }
    }
    unresolved.push_back(s);
  }

  return finalize(std::move(unresolved), used_pingpong);
}

RepairRequestMsg Receiver::build_repair() const {
  RepairRequestMsg req;
  req.short_ids = pending_unresolved_;
  return req;
}

ReceiveOutcome Receiver::complete_repair(const RepairResponseMsg& resp) {
  for (const chain::Transaction& tx : resp.txns) {
    received_txns_.emplace(tx.id, tx);
    index_candidate(tx.id);
  }
  return finalize({}, /*used_pingpong=*/false);
}

ReceiveOutcome Receiver::finalize(std::vector<std::uint64_t> unresolved, bool used_pingpong) {
  ReceiveOutcome out;
  out.used_pingpong = used_pingpong;
  if (!unresolved.empty()) {
    pending_unresolved_ = std::move(unresolved);
    out.unresolved = pending_unresolved_;
    out.status = ReceiveStatus::kNeedsRepair;
    return out;
  }
  pending_unresolved_.clear();

  std::vector<chain::TxId> ids(candidates_.begin(), candidates_.end());
  std::sort(ids.begin(), ids.end());
  out.merkle_ok =
      ids.size() == msg_.n && chain::merkle_root(ids) == msg_.header.merkle_root;
  if (out.merkle_ok) {
    out.block_ids = std::move(ids);
    out.status = ReceiveStatus::kDecoded;
  } else {
    out.status = ReceiveStatus::kFailed;
  }
  return out;
}

std::vector<chain::Transaction> Receiver::block_transactions() const {
  std::vector<chain::Transaction> out;
  out.reserve(candidates_.size());
  for (const chain::TxId& id : candidates_) {
    if (const auto tx = mempool_->get(id)) {
      out.push_back(*tx);
    } else if (const auto it = received_txns_.find(id); it != received_txns_.end()) {
      out.push_back(it->second);
    }
  }
  std::sort(out.begin(), out.end(), chain::CtorLess{});
  return out;
}

}  // namespace graphene::core
