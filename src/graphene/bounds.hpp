// Probabilistic-assurance bounds (§3.3, Theorems 1–3).
//
// Graphene never parameterizes an IBLT with an *expected* count; it uses
// β-assurance bounds so that the count of items the IBLT must recover is
// exceeded with probability at most 1−β.
#pragma once

#include <cstdint>

namespace graphene::core {

/// Theorem 1: with a = (m−n)·f_S expected Bloom false positives, returns
/// a* = ceil((1+δ)a) such that the realized count is ≤ a* with probability β.
[[nodiscard]] std::uint64_t bound_a_star(double a, double beta) noexcept;

/// Theorem 2: given z observed positives out of an m-transaction mempool
/// passed through a filter with FPR f_S, and a block of n transactions,
/// returns x* ≤ x (the true-positive count) with β-assurance.
[[nodiscard]] std::uint64_t bound_x_star(std::uint64_t z, std::uint64_t m, std::uint64_t n,
                                         double f_s, double beta) noexcept;

/// Theorem 3: upper bound y* ≥ y (the false-positive count among z) with
/// β-assurance, computed from x* of Theorem 2.
[[nodiscard]] std::uint64_t bound_y_star(std::uint64_t m, std::uint64_t x_star, double f_s,
                                         double beta) noexcept;

}  // namespace graphene::core
