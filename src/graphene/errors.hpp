// Protocol errors that carry diagnostic context.
//
// A bare `std::logic_error("build_request: no block message")` tells an
// operator nothing about *which* run went wrong or what the sizing inputs
// were. ProtocolError snapshots the receiver's observed state (z, the
// Theorem-2/3 bounds, protocol position) at the throw site; the same fields
// are mirrored into an `error` trace span when a Registry is attached, so a
// failure in a Monte Carlo batch can be found in `runs.jsonl` by stage name.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace graphene::core {

/// Receiver-side state snapshot attached to protocol errors.
struct ErrorContext {
  bool have_block_msg = false;  ///< was receive_block() ever called
  std::uint64_t n = 0;          ///< block size from the grblk message
  std::uint64_t m = 0;          ///< receiver mempool size
  std::uint64_t z = 0;          ///< observed candidate-set size |Z|
  std::uint64_t x_star = 0;     ///< Theorem 2 bound from the last request
  std::uint64_t y_star = 0;     ///< Theorem 3 bound from the last request
  std::uint64_t b = 0;          ///< chosen Protocol 2 false-positive budget
};

/// std::logic_error subclass so existing `EXPECT_THROW(..., std::logic_error)`
/// call sites keep working; what() embeds the formatted context.
class ProtocolError : public std::logic_error {
 public:
  ProtocolError(const std::string& stage, const std::string& what, ErrorContext ctx)
      : std::logic_error(format(stage, what, ctx)), stage_(stage), ctx_(ctx) {}

  [[nodiscard]] const std::string& stage() const noexcept { return stage_; }
  [[nodiscard]] const ErrorContext& context() const noexcept { return ctx_; }

  [[nodiscard]] static std::string format(const std::string& stage,
                                          const std::string& what,
                                          const ErrorContext& ctx);

 private:
  std::string stage_;
  ErrorContext ctx_;
};

}  // namespace graphene::core
