// Mempool synchronization (§3.2.1): two peers obtain the union of their
// transaction pools using the block-relay machinery with the sender's whole
// mempool standing in for the block.
//
// Extra step relative to block relay: the receiver tracks H — her
// transactions that fail the sender's filter S (plus IBLT negatives), which
// the sender certainly lacks — and ships them back, completing the union in
// both directions.
#pragma once

#include "chain/mempool.hpp"
#include "graphene/params.hpp"
#include "net/channel.hpp"

namespace graphene::core {

struct MempoolSyncResult {
  bool success = false;        ///< both pools hold the union afterwards
  bool used_protocol2 = false;
  bool used_repair = false;
  std::size_t graphene_bytes = 0;  ///< S+I+R+J+F encodings (no transactions)
  std::size_t txn_bytes = 0;       ///< full transactions exchanged
  std::uint64_t receiver_gained = 0;
  std::uint64_t sender_gained = 0;
};

/// Synchronizes both pools in place. `channel`, when non-null, records every
/// message for byte accounting. `salt` keys short IDs for this session.
MempoolSyncResult sync_mempools(chain::Mempool& sender_pool, chain::Mempool& receiver_pool,
                                std::uint64_t salt, const ProtocolConfig& cfg = {},
                                net::Channel* channel = nullptr);

}  // namespace graphene::core
