#include "util/base64.hpp"

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace graphene::util {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::array<std::int8_t, 256> make_reverse() {
  std::array<std::int8_t, 256> rev{};
  for (std::size_t i = 0; i < rev.size(); ++i) rev[i] = -1;
  for (std::int8_t i = 0; i < 64; ++i) {
    rev[static_cast<std::size_t>(static_cast<unsigned char>(kAlphabet[i]))] = i;
  }
  return rev;
}

constexpr std::array<std::int8_t, 256> kReverse = make_reverse();

}  // namespace

std::string base64_encode(ByteView data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            static_cast<std::uint32_t>(data[i + 2]);
    out.push_back(kAlphabet[(v >> 18) & 0x3f]);
    out.push_back(kAlphabet[(v >> 12) & 0x3f]);
    out.push_back(kAlphabet[(v >> 6) & 0x3f]);
    out.push_back(kAlphabet[v & 0x3f]);
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    const std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kAlphabet[(v >> 18) & 0x3f]);
    out.push_back(kAlphabet[(v >> 12) & 0x3f]);
    out.push_back('=');
    out.push_back('=');
  } else if (rest == 2) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kAlphabet[(v >> 18) & 0x3f]);
    out.push_back(kAlphabet[(v >> 12) & 0x3f]);
    out.push_back(kAlphabet[(v >> 6) & 0x3f]);
    out.push_back('=');
  }
  return out;
}

Bytes base64_decode(std::string_view text) {
  // Strip padding; the remaining length mod 4 decides the tail shape.
  while (!text.empty() && text.back() == '=') text.remove_suffix(1);
  const std::size_t rem = text.size() % 4;
  if (rem == 1) throw DeserializeError("base64: impossible length");

  Bytes out;
  out.reserve(text.size() / 4 * 3 + 2);
  std::uint32_t acc = 0;
  int bits = 0;
  for (const char c : text) {
    const std::int8_t v = kReverse[static_cast<std::size_t>(static_cast<unsigned char>(c))];
    if (v < 0) throw DeserializeError("base64: invalid character");
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xff));
    }
  }
  return out;
}

}  // namespace graphene::util
