// Byte-buffer primitives shared by every wire format in the library.
//
// All protocol messages in this reproduction are serialized to real byte
// buffers (never size formulas alone), so that the benchmark harnesses
// measure the same thing a network socket would carry.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace graphene::util {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Views the bytes of string-like data. The sanctioned pointer
/// reinterpretations in the codebase live here; everywhere else raw
/// `reinterpret_cast` is banned by tools/lint.py.
inline ByteView str_bytes(std::string_view s) noexcept {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Views the in-memory bytes of a trivially-copyable object array (host
/// representation — only for same-process use such as SIMD kernels and
/// scratch comparisons, never directly for wire bytes).
template <typename T>
inline ByteView object_bytes(const T* data, std::size_t count) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  return {reinterpret_cast<const std::uint8_t*>(data), count * sizeof(T)};
}

/// Thrown when a reader runs off the end of a buffer or a decoder meets a
/// structurally invalid encoding.
class DeserializeError : public std::runtime_error {
 public:
  explicit DeserializeError(const std::string& what) : std::runtime_error(what) {}
};

/// Little-endian byte writer: append-only, plus offset patching for
/// length/checksum fields reserved before their value is known (scatter
/// framing writes the payload first, then fixes the envelope in place).
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Adopts an existing buffer and appends after its current contents — the
  /// zero-copy bridge into an outgoing send queue: move the queue in, write
  /// frames, move it back out with take().
  explicit ByteWriter(Bytes&& adopt) noexcept : buf_(std::move(adopt)) {}

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }

  void raw(ByteView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }
  void raw(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  /// Appends `byte_count` bytes of a little-endian word array — the first
  /// byte_count bytes of words[0], words[1], … each emitted LSB-first. On a
  /// little-endian host this is one memcpy; the portable fallback produces
  /// identical wire bytes. `words` must hold at least ceil(byte_count/8)
  /// entries.
  void words_le(const std::uint64_t* words, std::size_t byte_count) {
    if (byte_count == 0) return;
    const std::size_t start = buf_.size();
    buf_.resize(start + byte_count);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(buf_.data() + start, words, byte_count);
    } else {
      for (std::size_t byte = 0; byte < byte_count; ++byte) {
        buf_[start + byte] =
            static_cast<std::uint8_t>(words[byte / 8] >> (8 * (byte % 8)));
      }
    }
  }

  /// Overwrites 4 bytes at `offset` (little-endian) with `v`. The offset
  /// must address already-written bytes.
  void patch_u32(std::size_t offset, std::uint32_t v) {
    check_patch(offset, 4);
    for (std::size_t i = 0; i < 4; ++i) {
      buf_[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

  /// Overwrites data.size() already-written bytes at `offset`.
  void patch_raw(std::size_t offset, ByteView data) {
    check_patch(offset, data.size());
    if (!data.empty()) std::memcpy(buf_.data() + offset, data.data(), data.size());
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const Bytes& bytes() const noexcept { return buf_; }
  /// Non-owning view of everything written so far (e.g. to checksum a
  /// payload region before patching its envelope).
  [[nodiscard]] ByteView view() const noexcept { return buf_; }
  [[nodiscard]] Bytes take() noexcept { return std::move(buf_); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void check_patch(std::size_t offset, std::size_t len) const {
    if (offset > buf_.size() || len > buf_.size() - offset) {
      throw std::out_of_range("ByteWriter: patch beyond written bytes");
    }
  }

  Bytes buf_;
};

/// Bounds-checked little-endian byte reader over a non-owning view.
class ByteReader {
 public:
  explicit ByteReader(ByteView data) noexcept : data_(data) {}

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint16_t u16() { return take<std::uint16_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(take<std::uint32_t>()); }
  std::int64_t i64() { return static_cast<std::int64_t>(take<std::uint64_t>()); }

  /// Reads `len` bytes into a fresh vector.
  Bytes raw(std::size_t len) {
    require(len);
    const std::uint8_t* first = data_.data() + pos_;
    Bytes out(first, first + len);
    pos_ += len;
    return out;
  }

  /// Borrows `len` bytes in place — the zero-copy twin of raw(). The view
  /// aliases the reader's underlying buffer (valid only while it lives).
  ByteView raw_view(std::size_t len) {
    require(len);
    const ByteView v = data_.subspan(pos_, len);
    pos_ += len;
    return v;
  }

  /// Everything not yet consumed, borrowed in place.
  [[nodiscard]] ByteView tail() const noexcept { return data_.subspan(pos_); }

  /// Reads `len` bytes into caller-provided storage.
  void raw_into(void* dst, std::size_t len) {
    require(len);
    std::memcpy(dst, data_.data() + pos_, len);
    pos_ += len;
  }

  /// Reads `byte_count` bytes into a little-endian word array (inverse of
  /// ByteWriter::words_le). `words` must hold ceil(byte_count/8) entries; a
  /// trailing partial word is zero-padded in its high bytes.
  void words_le_into(std::uint64_t* words, std::size_t byte_count) {
    if (byte_count == 0) return;
    require(byte_count);
    if (byte_count % 8 != 0) words[byte_count / 8] = 0;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(words, data_.data() + pos_, byte_count);
    } else {
      const std::size_t full = byte_count / 8;
      for (std::size_t w = 0; w < full; ++w) words[w] = 0;
      for (std::size_t byte = 0; byte < byte_count; ++byte) {
        words[byte / 8] |= static_cast<std::uint64_t>(data_[pos_ + byte])
                           << (8 * (byte % 8));
      }
    }
    pos_ += byte_count;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool done() const noexcept { return remaining() == 0; }

 private:
  void require(std::size_t len) const {
    if (len > remaining()) {
      throw DeserializeError("ByteReader: truncated buffer (need " + std::to_string(len) +
                             " bytes, have " + std::to_string(remaining()) + ")");
    }
  }

  template <typename T>
  T take() {
    require(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  ByteView data_;
  std::size_t pos_ = 0;
};

/// Equality for short digests via the SIMD bytes_equal kernel (not security
/// critical here; any early exit is at vector-chunk granularity, not per
/// byte, so it stays free of fine-grained short-circuit timing).
bool equal(ByteView a, ByteView b) noexcept;

}  // namespace graphene::util
