// From-scratch SHA-256 (FIPS 180-4).
//
// The blockchain substrate derives transaction IDs and Merkle roots from
// SHA-256, mirroring Bitcoin's double-SHA256 convention. Implemented here so
// the library carries no external dependencies.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace graphene::util {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  /// Resets to the initial state so the object can be reused.
  void reset() noexcept;

  /// Absorbs `data` into the hash state.
  Sha256& update(ByteView data) noexcept;
  Sha256& update(const void* data, std::size_t len) noexcept;

  /// Finalizes and returns the digest. The object must be reset() before
  /// further use.
  [[nodiscard]] Sha256Digest finalize() noexcept;

 private:
  void compress(const std::uint8_t block[64]) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

/// One-shot convenience wrapper.
[[nodiscard]] Sha256Digest sha256(ByteView data) noexcept;

/// Bitcoin-style double SHA-256.
[[nodiscard]] Sha256Digest sha256d(ByteView data) noexcept;

}  // namespace graphene::util
