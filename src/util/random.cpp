#include "util/random.hpp"

#include <cmath>
#include <cstdint>

namespace graphene::util {

std::uint64_t Rng::binomial(std::uint64_t n, double p) noexcept {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  // Exploit symmetry so the inversion loop runs over the smaller tail.
  if (p > 0.5) return n - binomial(n, 1.0 - p);

  const double mean = static_cast<double>(n) * p;
  const double variance = mean * (1.0 - p);
  if (variance > 1000.0) {
    // Normal approximation with continuity correction; clamp into range.
    const double sample = mean + std::sqrt(variance) * gaussian() + 0.5;
    if (sample <= 0.0) return 0;
    if (sample >= static_cast<double>(n)) return n;
    return static_cast<std::uint64_t>(sample);
  }
  if (mean < 32.0) {
    // Inversion by sequential search over the CDF.
    const double q = 1.0 - p;
    const double ratio = p / q;
    double pdf = std::pow(q, static_cast<double>(n));
    double cdf = pdf;
    const double u = uniform();
    std::uint64_t k = 0;
    while (cdf < u && k < n) {
      ++k;
      pdf *= ratio * static_cast<double>(n - k + 1) / static_cast<double>(k);
      cdf += pdf;
    }
    return k;
  }
  // Moderate mean: sum of Bernoulli draws is still cheap enough.
  std::uint64_t count = 0;
  for (std::uint64_t i = 0; i < n; ++i) count += chance(p) ? 1u : 0u;
  return count;
}

double Rng::gaussian() noexcept {
  // Box–Muller; draws until the uniform is nonzero so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

}  // namespace graphene::util
