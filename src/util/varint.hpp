// Bitcoin-style CompactSize variable-length integers.
//
// Every protocol message in the library frames its collections with
// CompactSize so that message sizes match what deployed clients would send.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace graphene::util {

/// Appends `v` as a CompactSize: 1 byte for v < 0xfd, otherwise a marker byte
/// (0xfd/0xfe/0xff) followed by 2/4/8 little-endian bytes.
void write_varint(ByteWriter& w, std::uint64_t v);

/// Reads a CompactSize; throws DeserializeError on truncation or a
/// non-canonical (oversized) encoding.
std::uint64_t read_varint(ByteReader& r);

/// Reads a CompactSize length field and rejects values above `max` before the
/// caller can feed them to an allocator or a `(v + 7) / 8`-style computation
/// that would overflow. `field` names the offending field in the error.
std::uint64_t read_varint_bounded(ByteReader& r, std::uint64_t max, const char* field);

/// Size in bytes that write_varint would produce.
[[nodiscard]] std::size_t varint_size(std::uint64_t v) noexcept;

}  // namespace graphene::util
