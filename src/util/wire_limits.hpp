// Hard caps on every length field read from the wire.
//
// A length prefix in a message an adversarial peer controls must never be
// trusted before it is checked twice: once against these absolute protocol
// limits (so a 2^60 cell count can't drive a multi-gigabyte allocation or an
// integer overflow in a `(bits + 7) / 8` computation), and once against the
// bytes actually remaining in the buffer (so the decoder fails fast instead
// of looping over a count the payload can't back). The limits are sized an
// order of magnitude above anything the simulator produces at paper scale
// (§5 uses blocks up to 10^5 transactions and mempools to 10^7), so honest
// traffic never trips them.
//
// Deserializers throw util::DeserializeError when a limit is exceeded; the
// error names the field so a rejected message is attributable in traces.
#pragma once

#include <cstdint>

namespace graphene::util::wire {

/// Bloom filter: 2^32 bits = 512 MiB of payload, far above the ~10 MiB a
/// 10^7-entry mempool filter needs at the paper's lowest FPRs.
inline constexpr std::uint64_t kMaxBloomBits = 1ULL << 32;

/// IBLT / KvIblt: 2^24 cells is a 256 MiB table; difference IBLTs in the
/// paper stay under 10^4 cells even for mempool sync.
inline constexpr std::uint64_t kMaxIbltCells = 1ULL << 24;

/// Golomb-coded set: item count and coded bit length.
inline constexpr std::uint64_t kMaxGolombItems = 1ULL << 28;
inline constexpr std::uint64_t kMaxGolombBits = 1ULL << 35;

/// Cuckoo filter bucket count (4 slots per bucket).
inline constexpr std::uint64_t kMaxCuckooBuckets = 1ULL << 28;

/// Announced transactions per block (`n` in grblk). Bitcoin-scale blocks
/// carry ~10^4; the paper's largest experiments use 10^5.
inline constexpr std::uint64_t kMaxBlockTxCount = 1ULL << 24;

/// Collection counts inside one message (missing txns, repair short IDs).
inline constexpr std::uint64_t kMaxWireCollection = 1ULL << 24;

/// Protocol 2 sizing parameters (b, y*) echoed back by the receiver; the
/// sender builds an IBLT of b + y* cells, so both must be bounded before
/// they meet an allocator. Theorem 2/3 bounds stay far below this.
inline constexpr std::uint64_t kMaxSizingParam = kMaxIbltCells;

/// Claimed wire size of one full transaction record (id + size field +
/// padded body). 4 MiB is ~4x a consensus-maximum transaction; the paper's
/// workloads average 226 bytes. Found by the flow-aware
/// graphene-bounded-wire-read tidy check: the u32 size read in read_full_tx
/// crossed the deserializer unvalidated and later padded re-serialization,
/// so a ~40-byte hostile record could claim 4 GiB and amplify into
/// multi-GiB allocations when the decoded block was re-encoded.
inline constexpr std::uint64_t kMaxTxWireSize = 1ULL << 22;

/// Payload bytes one net::FrameReader will buffer for a single framed
/// message. The largest honest payloads (mempool-scale Bloom filters) stay
/// under a few MiB; 64 MiB keeps a hostile length prefix from pinning that
/// much memory per connection times thousands of connections.
inline constexpr std::uint64_t kMaxFramePayload = 1ULL << 26;

/// Human-readable text carried in a daemon error frame. Diagnostics, not
/// data: anything longer is a smuggling attempt.
inline constexpr std::uint64_t kMaxDaemonTextBytes = 512;

/// Set size a daemon peer may claim in its hello. Only feeds parameter
/// arithmetic (never an allocation), but bounding it keeps every downstream
/// sizing computation far from overflow.
inline constexpr std::uint64_t kMaxDaemonItemCount = 1ULL << 40;

/// Coded symbols in one RatelessChunk (48 bytes each → 3 MiB ceiling). The
/// rateless decoder needs ~1.35·d symbols total, so even a 10^6-item
/// difference fits in a handful of maximal chunks.
inline constexpr std::uint64_t kMaxRatelessChunkSymbols = 1ULL << 16;

/// Starting stream index claimed by a RatelessChunk. Indices grow one per
/// symbol sent, so 2^40 is unreachable for honest peers; the cap keeps
/// `start + count` arithmetic far from overflow.
inline constexpr std::uint64_t kMaxRatelessStreamIndex = 1ULL << 40;

}  // namespace graphene::util::wire
