#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace graphene::util {

double chernoff_delta(double mu, double beta) noexcept {
  if (mu <= 0.0) return 0.0;
  beta = std::clamp(beta, 0.0, 1.0 - 1e-15);
  const double s = -std::log(1.0 - beta) / mu;
  return 0.5 * (s + std::sqrt(s * s + 8.0 * s));
}

double chernoff_upper_tail(double delta, double mu) noexcept {
  if (delta <= 0.0 || mu <= 0.0) return 1.0;
  // log[(e^δ/(1+δ)^{1+δ})^µ] = µ (δ − (1+δ) ln(1+δ))
  const double log_tail = mu * (delta - (1.0 + delta) * std::log1p(delta));
  return std::exp(log_tail);
}

double log_binomial_cdf(std::uint64_t k, std::uint64_t n, double p) noexcept {
  if (k >= n || p <= 0.0) return 0.0;  // probability 1
  if (p >= 1.0) return -1e300;         // probability 0 (log scale)
  // Accumulate pmf terms in log space with a running log-sum-exp anchored at
  // the largest term seen so far. n in the gate use case is ≤ ~10^5, so the
  // linear scan is cheap and exact to double precision.
  const double logp = std::log(p);
  const double logq = std::log1p(-p);
  double log_term = static_cast<double>(n) * logq;  // pmf at i = 0
  double log_sum = log_term;
  for (std::uint64_t i = 1; i <= k; ++i) {
    // pmf(i) / pmf(i-1) = (n-i+1)/i * p/q
    log_term += std::log(static_cast<double>(n - i + 1)) -
                std::log(static_cast<double>(i)) + logp - logq;
    const double hi = std::max(log_sum, log_term);
    log_sum = hi + std::log(std::exp(log_sum - hi) + std::exp(log_term - hi));
  }
  return std::min(log_sum, 0.0);
}

namespace {

/// Bisection helper: smallest/largest p with the exact tail condition. The
/// Clopper–Pearson bounds are the roots of the binomial tail in p; 100
/// bisection steps pin them far below double noise for any n.
template <typename Cond>
double bisect(double lo, double hi, Cond cond) noexcept {
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cond(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double clopper_pearson_lower(std::uint64_t successes, std::uint64_t trials,
                             double confidence) noexcept {
  if (trials == 0 || successes == 0) return 0.0;
  const double alpha = std::clamp(1.0 - confidence, 1e-12, 1.0);
  // The bound solves Pr[X ≥ s | p] = α. The tail is increasing in p, and
  // Pr[X ≥ s] ≥ α ⇔ CDF(s−1) ≤ 1−α, which stays stable in log space.
  return bisect(0.0, 1.0, [&](double p) {
    return log_binomial_cdf(successes - 1, trials, p) <= std::log1p(-alpha);
  });
}

double clopper_pearson_upper(std::uint64_t successes, std::uint64_t trials,
                             double confidence) noexcept {
  if (trials == 0) return 1.0;
  if (successes >= trials) return 1.0;
  const double alpha = std::clamp(1.0 - confidence, 1e-12, 1.0);
  const double log_alpha = std::log(alpha);
  // Smallest p with Pr[X ≤ s] ≤ α.
  return bisect(0.0, 1.0, [&](double p) {
    return log_binomial_cdf(successes, trials, p) <= log_alpha;
  });
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials, double z) noexcept {
  if (trials == 0) return {0.5, 0.5};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {center, half};
}

}  // namespace graphene::util
