#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace graphene::util {

double chernoff_delta(double mu, double beta) noexcept {
  if (mu <= 0.0) return 0.0;
  beta = std::clamp(beta, 0.0, 1.0 - 1e-15);
  const double s = -std::log(1.0 - beta) / mu;
  return 0.5 * (s + std::sqrt(s * s + 8.0 * s));
}

double chernoff_upper_tail(double delta, double mu) noexcept {
  if (delta <= 0.0 || mu <= 0.0) return 1.0;
  // log[(e^δ/(1+δ)^{1+δ})^µ] = µ (δ − (1+δ) ln(1+δ))
  const double log_tail = mu * (delta - (1.0 + delta) * std::log1p(delta));
  return std::exp(log_tail);
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials, double z) noexcept {
  if (trials == 0) return {0.5, 0.5};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {center, half};
}

}  // namespace graphene::util
