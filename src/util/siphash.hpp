// SipHash-2-4 (Aumasson & Bernstein).
//
// The paper (§6.1) notes that deployed clients use SipHash to derive short
// transaction IDs so that an attacker cannot grind ID collisions that are
// valid at more than one peer. Compact Blocks (BIP-152) keys short IDs with
// SipHash of the block header + nonce; our baseline does the same.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace graphene::util {

/// 128-bit SipHash key.
struct SipHashKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;
};

/// Computes 64-bit SipHash-2-4 of `data` under `key`.
[[nodiscard]] std::uint64_t siphash24(const SipHashKey& key, ByteView data) noexcept;

/// Convenience overload for a single 64-bit word (common for short IDs).
[[nodiscard]] std::uint64_t siphash24(const SipHashKey& key, std::uint64_t word) noexcept;

}  // namespace graphene::util
