// Base64 (RFC 4648, standard alphabet, padded) encoding for forensic
// captures: raw wire bytes must survive a trip through JSON, and hex would
// double the capture size where base64 adds a third.
#pragma once

#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace graphene::util {

/// Standard-alphabet base64 with '=' padding.
[[nodiscard]] std::string base64_encode(ByteView data);

/// Decodes padded or unpadded base64; throws DeserializeError on characters
/// outside the alphabet or an impossible length.
[[nodiscard]] Bytes base64_decode(std::string_view text);

}  // namespace graphene::util
