// Fixed-size worker pool plus a structured parallel-for, the concurrency
// substrate behind Algorithm 1's trial batches and the simulator's Monte
// Carlo loops.
//
// Design constraints (rationale in docs/CONCURRENCY.md):
//
//  * Determinism lives in the WORK DECOMPOSITION, not in the pool.
//    parallel_for runs fn(i) over a fixed index range; callers key all
//    randomness off the index (util::Rng::split or an index-derived seed),
//    so results are identical for any worker count — including zero.
//
//  * The calling thread participates. parallel_for never parks waiting for
//    a pool slot: the caller drains the same index counter as the workers,
//    so nested calls, zero-thread pools, and fully-busy pools all complete
//    without deadlock.
//
//  * One pool per process is the intended shape. Sender, Receiver,
//    SetReconciler, and the simulator all reach it through
//    core::ProtocolConfig::pool; oversubscribing with one pool per
//    subsystem defeats the point.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace graphene::util {

class ThreadPool {
 public:
  /// `threads == 0` sizes to hardware_concurrency (at least 1 worker).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool() EXCLUDES(mu_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues fire-and-forget work. Tasks must not throw (parallel_for
  /// wraps its chunks so user exceptions are captured and rethrown there).
  void post(std::function<void()> task) EXCLUDES(mu_);

 private:
  void worker_loop() EXCLUDES(mu_);

  Mutex mu_;
  // condition_variable_any so waits release the annotated Mutex directly;
  // the analysis sees mu_ held across the whole wait loop (see util/sync.hpp).
  std::condition_variable_any cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(0) … fn(count-1) across the pool and the calling thread; returns
/// once every index has completed. `pool == nullptr` (or an exhausted pool)
/// degrades to a plain loop on the caller. The first exception thrown by fn
/// is rethrown on the caller after all indices finish or are claimed.
///
/// fn must be safe to call concurrently for distinct indices; index
/// execution order is unspecified, so deterministic callers must make fn(i)
/// depend only on i and write to per-index slots.
void parallel_for(ThreadPool* pool, std::uint64_t count,
                  const std::function<void(std::uint64_t)>& fn);

}  // namespace graphene::util
