#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <utility>

namespace graphene::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    const MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      const MutexLock lock(mu_);
      // Predicate-free wait loop: the guarded reads stay in this function's
      // body, where the analysis can see mu_ is held (a wait predicate
      // lambda would be analyzed as a separate, lock-less function).
      while (!stop_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one parallel_for call. Helper tasks hold a shared_ptr so
/// a task scheduled after the loop already completed still finds live (and
/// immediately exhausted) state.
struct ForState {
  explicit ForState(std::uint64_t n, const std::function<void(std::uint64_t)>& f)
      : count(n), fn(f) {}

  const std::uint64_t count;
  const std::function<void(std::uint64_t)>& fn;
  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> done{0};
  Mutex mu;
  std::condition_variable_any cv;
  std::exception_ptr error GUARDED_BY(mu);  // first failure

  /// Claims and runs indices until the range is exhausted.
  void drain() {
    for (;;) {
      const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const MutexLock lock(mu);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        const MutexLock lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void parallel_for(ThreadPool* pool, std::uint64_t count,
                  const std::function<void(std::uint64_t)>& fn) {
  if (count == 0) return;
  if (pool == nullptr || pool->size() == 0 || count == 1) {
    for (std::uint64_t i = 0; i < count; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>(count, fn);
  const std::uint64_t helpers =
      std::min<std::uint64_t>(pool->size(), count - 1);
  for (std::uint64_t h = 0; h < helpers; ++h) {
    pool->post([state] { state->drain(); });
  }
  state->drain();

  const MutexLock lock(state->mu);
  while (state->done.load(std::memory_order_acquire) < count) {
    state->cv.wait(state->mu);
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace graphene::util
