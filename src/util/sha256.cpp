#include "util/sha256.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace graphene::util {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

inline std::uint32_t big_sigma0(std::uint32_t x) noexcept {
  return std::rotr(x, 2) ^ std::rotr(x, 13) ^ std::rotr(x, 22);
}
inline std::uint32_t big_sigma1(std::uint32_t x) noexcept {
  return std::rotr(x, 6) ^ std::rotr(x, 11) ^ std::rotr(x, 25);
}
inline std::uint32_t small_sigma0(std::uint32_t x) noexcept {
  return std::rotr(x, 7) ^ std::rotr(x, 18) ^ (x >> 3);
}
inline std::uint32_t small_sigma1(std::uint32_t x) noexcept {
  return std::rotr(x, 17) ^ std::rotr(x, 19) ^ (x >> 10);
}
inline std::uint32_t ch(std::uint32_t x, std::uint32_t y, std::uint32_t z) noexcept {
  return (x & y) ^ (~x & z);
}
inline std::uint32_t maj(std::uint32_t x, std::uint32_t y, std::uint32_t z) noexcept {
  return (x & y) ^ (x & z) ^ (y & z);
}

}  // namespace

void Sha256::reset() noexcept {
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  total_len_ = 0;
  buffer_len_ = 0;
}

void Sha256::compress(const std::uint8_t block[64]) noexcept {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    w[i] = small_sigma1(w[i - 2]) + w[i - 7] + small_sigma0(w[i - 15]) + w[i - 16];
  }

  auto [a, b, c, d, e, f, g, h] = state_;
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t t1 = h + big_sigma1(e) + ch(e, f, g) + kRoundConstants[static_cast<std::size_t>(i)] + w[i];
    const std::uint32_t t2 = big_sigma0(a) + maj(a, b, c);
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

Sha256& Sha256::update(const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  total_len_ += len;
  if (buffer_len_ > 0) {
    const std::size_t fill = std::min(len, 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, p, fill);
    buffer_len_ += fill;
    p += fill;
    len -= fill;
    if (buffer_len_ == 64) {
      compress(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (len >= 64) {
    compress(p);
    p += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_.data(), p, len);
    buffer_len_ = len;
  }
  return *this;
}

Sha256& Sha256::update(ByteView data) noexcept { return update(data.data(), data.size()); }

Sha256Digest Sha256::finalize() noexcept {
  const std::uint64_t bit_len = total_len_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(&pad_byte, 1);
  const std::uint8_t zero = 0x00;
  while (buffer_len_ != 56) update(&zero, 1);

  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  }
  // Bypass total_len_ bookkeeping: this is part of the padding.
  std::memcpy(buffer_.data() + 56, len_be, 8);
  compress(buffer_.data());

  Sha256Digest digest;
  for (int i = 0; i < 8; ++i) {
    digest[static_cast<std::size_t>(4 * i)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 24);
    digest[static_cast<std::size_t>(4 * i + 1)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 16);
    digest[static_cast<std::size_t>(4 * i + 2)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 8);
    digest[static_cast<std::size_t>(4 * i + 3)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)]);
  }
  return digest;
}

Sha256Digest sha256(ByteView data) noexcept {
  Sha256 h;
  h.update(data);
  return h.finalize();
}

Sha256Digest sha256d(ByteView data) noexcept {
  const Sha256Digest first = sha256(data);
  return sha256(ByteView(first.data(), first.size()));
}

}  // namespace graphene::util
