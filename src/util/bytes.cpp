#include "util/bytes.hpp"

#include <cstddef>

#include "util/simd/simd.hpp"

namespace graphene::util {

bool equal(ByteView a, ByteView b) noexcept {
  if (a.size() != b.size()) return false;
  return simd::active().bytes_equal(a.data(), b.data(), a.size());
}

}  // namespace graphene::util
