#include "util/bytes.hpp"

#include <cstddef>
#include <cstdint>

namespace graphene::util {

bool equal(ByteView a, ByteView b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  return acc == 0;
}

}  // namespace graphene::util
