#include "util/siphash.hpp"

#include <bit>
#include <cstddef>
#include <cstdint>

namespace graphene::util {

namespace {

inline void sipround(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
                     std::uint64_t& v3) noexcept {
  v0 += v1;
  v1 = std::rotl(v1, 13);
  v1 ^= v0;
  v0 = std::rotl(v0, 32);
  v2 += v3;
  v3 = std::rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = std::rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = std::rotl(v1, 17);
  v1 ^= v2;
  v2 = std::rotl(v2, 32);
}

inline std::uint64_t read_le64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::uint64_t siphash24(const SipHashKey& key, ByteView data) noexcept {
  std::uint64_t v0 = 0x736f6d6570736575ULL ^ key.k0;
  std::uint64_t v1 = 0x646f72616e646f6dULL ^ key.k1;
  std::uint64_t v2 = 0x6c7967656e657261ULL ^ key.k0;
  std::uint64_t v3 = 0x7465646279746573ULL ^ key.k1;

  const std::size_t len = data.size();
  const std::size_t end = len - (len % 8);
  for (std::size_t i = 0; i < end; i += 8) {
    const std::uint64_t m = read_le64(data.data() + i);
    v3 ^= m;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    v0 ^= m;
  }

  std::uint64_t last = static_cast<std::uint64_t>(len & 0xff) << 56;
  for (std::size_t i = end; i < len; ++i) {
    last |= static_cast<std::uint64_t>(data[i]) << (8 * (i - end));
  }
  v3 ^= last;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  v0 ^= last;

  v2 ^= 0xff;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

std::uint64_t siphash24(const SipHashKey& key, std::uint64_t word) noexcept {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(word >> (8 * i));
  return siphash24(key, ByteView(buf, 8));
}

}  // namespace graphene::util
