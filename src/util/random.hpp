// Deterministic fast RNG for Monte Carlo simulation and workload synthesis.
//
// xoshiro256** — small state, excellent statistical quality, and fully
// reproducible across platforms (unlike std::mt19937 distributions, whose
// outputs are implementation-defined for std::uniform_int_distribution).
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"
#include "util/hash.hpp"

namespace graphene::util {

class Rng {
 public:
  /// Seeds deterministically from a single 64-bit value via splitmix64.
  explicit Rng(std::uint64_t seed = 0xdecafbadULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) {
      seed = mix64(seed + 0x9e3779b97f4a7c15ULL);
      word = seed;
    }
    // Avoid the all-zero state, which is a fixed point.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  /// Deterministically derives an independent child stream for worker
  /// `stream`. Pure function of the current state and `stream` — it does
  /// NOT advance this generator — so a parent seeded identically always
  /// yields the same children no matter how many threads consume them.
  /// Statistical independence comes from the splitmix64 avalanche over all
  /// four state words; correlated parent/child sequences would need ~2^64
  /// draws to matter.
  [[nodiscard]] Rng split(std::uint64_t stream) const noexcept {
    std::uint64_t s = mix64(stream ^ 0xa0761d6478bd642fULL);
    for (const std::uint64_t word : state_) s = mix64(s ^ word);
    return Rng(s);
  }

  /// Next 64 uniformly random bits.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method for unbiased results.
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // 128-bit multiply; rejection zone keeps the result unbiased.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Fills `out` with random bytes.
  void fill(Bytes& out) noexcept {
    for (auto& b : out) b = static_cast<std::uint8_t>(next());
  }

  /// Standard normal via Box–Muller (used by the workload generator's
  /// log-normal block-size model).
  double gaussian() noexcept;

  /// Binomial(n, p) sample. Exact inversion for small means, normal
  /// approximation with continuity correction beyond np(1−p) > 1000 — the
  /// Monte Carlo theorem-validation benches draw millions of these.
  std::uint64_t binomial(std::uint64_t n, double p) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace graphene::util
