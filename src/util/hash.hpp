// Fast non-cryptographic hashing for Bloom filter and IBLT index derivation.
//
// Two strategies are provided:
//
//  * MixHasher — a splitmix64-style avalanche over (seed, input), used when
//    the input is an arbitrary 64-bit word (IBLT cell indexing, hypergraph
//    edge generation).
//
//  * split_txid_words — §6.3's optimization: a transaction ID is already a
//    cryptographic hash, so instead of re-hashing it k times a client can
//    slice the 32-byte ID into k words. bench_bloom_hashing quantifies the
//    speedup over k-fold SipHash.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace graphene::util {

/// splitmix64 finalizer: a fast, well-distributed 64-bit mixer.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derives the i-th hash of `item` under `seed` via double hashing
/// (Kirsch–Mitzenmacher): h_i = h1 + i*h2, each drawn from mix64.
class MixHasher {
 public:
  explicit MixHasher(std::uint64_t seed) noexcept : seed_(seed) {}

  [[nodiscard]] std::uint64_t operator()(std::uint64_t item, std::uint32_t i) const noexcept {
    const std::uint64_t h1 = mix64(item ^ seed_);
    const std::uint64_t h2 = mix64(item + 0x632be59bd9b4e019ULL + (seed_ << 1));
    return h1 + static_cast<std::uint64_t>(i) * (h2 | 1);
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
};

/// Slices a 32-byte digest into four 64-bit little-endian words (§6.3).
/// For k > 4 hash functions, callers extend with double hashing over the
/// first two words, which preserves the "no extra crypto hashing" property.
[[nodiscard]] std::array<std::uint64_t, 4> split_digest_words(ByteView digest32) noexcept;

/// Folds an arbitrary byte string to 64 bits (FNV-1a then mixed); used where
/// an input is not already a digest.
[[nodiscard]] std::uint64_t hash64(ByteView data, std::uint64_t seed = 0) noexcept;

}  // namespace graphene::util
