// Fast non-cryptographic hashing for Bloom filter and IBLT index derivation.
//
// Two strategies are provided:
//
//  * MixHasher — a splitmix64-style avalanche over (seed, input), used when
//    the input is an arbitrary 64-bit word (IBLT cell indexing, hypergraph
//    edge generation).
//
//  * split_txid_words — §6.3's optimization: a transaction ID is already a
//    cryptographic hash, so instead of re-hashing it k times a client can
//    slice the 32-byte ID into k words. bench_bloom_hashing quantifies the
//    speedup over k-fold SipHash.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>

#include "util/bytes.hpp"

namespace graphene::util {

/// splitmix64 finalizer: a fast, well-distributed 64-bit mixer.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derives the i-th hash of `item` under `seed` via double hashing
/// (Kirsch–Mitzenmacher): h_i = h1 + i*h2, each drawn from mix64.
class MixHasher {
 public:
  explicit MixHasher(std::uint64_t seed) noexcept : seed_(seed) {}

  [[nodiscard]] std::uint64_t operator()(std::uint64_t item, std::uint32_t i) const noexcept {
    const std::uint64_t h1 = mix64(item ^ seed_);
    const std::uint64_t h2 = mix64(item + 0x632be59bd9b4e019ULL + (seed_ << 1));
    return h1 + static_cast<std::uint64_t>(i) * (h2 | 1);
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
};

/// Slices a 32-byte digest into four 64-bit little-endian words (§6.3).
/// For k > 4 hash functions, callers extend with double hashing over the
/// first two words, which preserves the "no extra crypto hashing" property.
///
/// Inline with a word-wise fast path: this runs once per item in every
/// Bloom insert/query, and a byte-at-a-time assembly was the single largest
/// cost in the receiver's mempool scan. The fallback produces identical
/// words on any byte order.
[[nodiscard]] inline std::array<std::uint64_t, 4> split_digest_words(
    ByteView digest32) noexcept {
  std::array<std::uint64_t, 4> words{};
  if (digest32.size() >= 32) {
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(words.data(), digest32.data(), 32);
    } else {
      for (std::size_t i = 0; i < 32; ++i) {
        words[i / 8] |= static_cast<std::uint64_t>(digest32[i]) << (8 * (i % 8));
      }
    }
    return words;
  }
  for (std::size_t i = 0; i < digest32.size(); ++i) {
    words[i / 8] |= static_cast<std::uint64_t>(digest32[i]) << (8 * (i % 8));
  }
  return words;
}

/// Folds an arbitrary byte string to 64 bits (FNV-1a then mixed); used where
/// an input is not already a digest.
[[nodiscard]] std::uint64_t hash64(ByteView data, std::uint64_t seed = 0) noexcept;

/// Exact n % d for a divisor fixed at construction, computed with multiplies
/// instead of a hardware divide (Lemire–Kaser–Kurz fastmod with a 128-bit
/// reciprocal). Index derivation in the Bloom/IBLT hot loops reduces a full
/// 64-bit hash by an invariant table size per probe, and the ~20–40 cycle
/// `div` there dominates the hash itself; this replaces it with four
/// multiplies while returning bit-identical results for every n.
class FastMod64 {
#if defined(__SIZEOF_INT128__)
  // __extension__ silences -Wpedantic: __int128 is a GCC/Clang extension,
  // and both CI compilers provide it on every supported target.
  __extension__ typedef unsigned __int128 Uint128;
#endif

 public:
  FastMod64() = default;

  explicit FastMod64(std::uint64_t d) noexcept : d_(d) {
#if defined(__SIZEOF_INT128__)
    // M = floor((2^128 - 1) / d) + 1, split into two 64-bit halves. With
    // F = 128 ≥ 64 + ceil(log2 d) the fastmod theorem guarantees exactness
    // for all 64-bit n and any d ≥ 1 (d = 1 wraps M to 0, which correctly
    // maps every n to 0).
    const Uint128 m = ~static_cast<Uint128>(0) / d + 1;
    m_hi_ = static_cast<std::uint64_t>(m >> 64);
    m_lo_ = static_cast<std::uint64_t>(m);
#endif
  }

  [[nodiscard]] std::uint64_t divisor() const noexcept { return d_; }

  /// Returns n % divisor(); divisor() must be non-zero.
  [[nodiscard]] std::uint64_t mod(std::uint64_t n) const noexcept {
#if defined(__SIZEOF_INT128__)
    // lowbits = (M * n) mod 2^128, then result = floor(lowbits * d / 2^128).
    const Uint128 bottom = static_cast<Uint128>(m_lo_) * n;
    const std::uint64_t low_hi =
        m_hi_ * n + static_cast<std::uint64_t>(bottom >> 64);  // wraps mod 2^64
    const std::uint64_t low_lo = static_cast<std::uint64_t>(bottom);
    const Uint128 t = static_cast<Uint128>(low_lo) * d_;
    const Uint128 u =
        static_cast<Uint128>(low_hi) * d_ + static_cast<std::uint64_t>(t >> 64);
    return static_cast<std::uint64_t>(u >> 64);
#else
    return n % d_;
#endif
  }

 private:
  std::uint64_t d_ = 0;
#if defined(__SIZEOF_INT128__)
  std::uint64_t m_hi_ = 0;
  std::uint64_t m_lo_ = 0;
#endif
};

}  // namespace graphene::util
