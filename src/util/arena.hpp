// Bump-pointer arena for per-session scratch buffers.
//
// The protocol hot paths (Sender::serve/encode, ReceiveSession::scan_ids)
// repeatedly allocate short-lived vectors whose sizes track the mempool —
// tens of thousands of entries churned per served request. An arena turns
// that into pointer arithmetic: allocate_span() hands out uninitialized
// typed spans from chunked slabs, and reset() recycles every slab at once
// without returning memory to the allocator, so steady-state serving does
// no heap traffic at all.
//
// Not thread-safe; each thread or session owns its arena. Objects must be
// trivially destructible (spans are never individually freed).
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

namespace graphene::util {

class Arena {
 public:
  /// `chunk_bytes` is the slab granularity; oversized requests get a
  /// dedicated slab of exactly the requested size.
  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes) noexcept
      : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `count` objects of T, max-aligned. The span
  /// is valid until reset() or destruction. count == 0 yields an empty span.
  template <typename T>
  [[nodiscard]] std::span<T> allocate_span(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    static_assert(alignof(T) <= alignof(std::max_align_t));
    if (count == 0) return {};
    void* p = allocate_bytes(count * sizeof(T));
    // Arena storage is always freshly-obtained max-aligned memory, so
    // launder-free placement is fine for trivial types.
    return {static_cast<T*>(p), count};
  }

  /// Zero-initialized variant of allocate_span().
  template <typename T>
  [[nodiscard]] std::span<T> allocate_zeroed(std::size_t count) {
    std::span<T> s = allocate_span<T>(count);
    if (!s.empty()) std::memset(s.data(), 0, s.size_bytes());
    return s;
  }

  /// Invalidates every span handed out so far and makes all slab capacity
  /// available again. O(#slabs), no deallocation.
  void reset() noexcept {
    used_ = 0;
    cursor_ = 0;
    for (Slab& s : slabs_) s.used = 0;
  }

  /// Snapshot of the allocation cursor, for scoped rewind.
  struct Mark {
    std::size_t cursor = 0;
    std::size_t slab_used = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] Mark mark() const noexcept {
    return {cursor_, cursor_ < slabs_.size() ? slabs_[cursor_].used : 0, used_};
  }

  /// Invalidates every span handed out since `m` was taken; earlier spans
  /// stay live. Marks must rewind in LIFO order.
  void rewind(const Mark& m) noexcept {
    for (std::size_t i = m.cursor; i < slabs_.size(); ++i) slabs_[i].used = 0;
    if (m.cursor < slabs_.size()) slabs_[m.cursor].used = m.slab_used;
    cursor_ = m.cursor;
    used_ = m.used;
  }

  /// Bytes handed out since the last reset (capacity diagnostics).
  [[nodiscard]] std::size_t bytes_in_use() const noexcept { return used_; }
  /// Total slab capacity currently held.
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    std::size_t total = 0;
    for (const Slab& s : slabs_) total += s.size;
    return total;
  }

  static constexpr std::size_t kDefaultChunkBytes = std::size_t{1} << 16;

 private:
  struct Slab {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] void* allocate_bytes(std::size_t n) {
    // Keep every hand-out max-aligned so heterogeneous allocate_span<T>
    // calls can interleave freely.
    n = (n + alignof(std::max_align_t) - 1) &
        ~(alignof(std::max_align_t) - 1);
    while (cursor_ < slabs_.size()) {
      Slab& s = slabs_[cursor_];
      if (s.size - s.used >= n) {
        void* p = s.data.get() + s.used;
        s.used += n;
        used_ += n;
        return p;
      }
      ++cursor_;
    }
    Slab fresh;
    fresh.size = n > chunk_bytes_ ? n : chunk_bytes_;
    fresh.data = std::make_unique<std::byte[]>(fresh.size);
    fresh.used = n;
    slabs_.push_back(std::move(fresh));
    cursor_ = slabs_.size() - 1;
    used_ += n;
    return slabs_.back().data.get();
  }

  std::size_t chunk_bytes_;
  std::vector<Slab> slabs_;
  std::size_t cursor_ = 0;  ///< first slab worth probing for free space
  std::size_t used_ = 0;
};

/// The calling thread's shared scratch arena. Use through ScratchScope so
/// nested hot-path calls on one thread compose.
[[nodiscard]] inline Arena& thread_scratch() {
  thread_local Arena arena;
  return arena;
}

/// RAII window onto thread_scratch(): spans allocated through the scope are
/// recycled when it closes (LIFO rewind), so steady-state hot paths reuse
/// the same slabs with zero heap traffic. Spans must not outlive the scope.
class ScratchScope {
 public:
  ScratchScope() noexcept : arena_(thread_scratch()), mark_(arena_.mark()) {}
  ~ScratchScope() { arena_.rewind(mark_); }
  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

  /// Uninitialized scratch for `count` objects of T.
  template <typename T>
  [[nodiscard]] std::span<T> span(std::size_t count) {
    return arena_.allocate_span<T>(count);
  }
  /// Zero-initialized scratch.
  template <typename T>
  [[nodiscard]] std::span<T> zeroed(std::size_t count) {
    return arena_.allocate_zeroed<T>(count);
  }
  [[nodiscard]] Arena& arena() noexcept { return arena_; }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

}  // namespace graphene::util
