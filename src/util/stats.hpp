// Statistical helpers used throughout the protocol and the IBLT optimizer.
//
//  * chernoff_delta      — solves Theorem 1/3's bound for δ given β.
//  * chernoff_upper_tail — the (e^δ/(1+δ)^{1+δ})^µ tail used by Theorem 2.
//  * wilson_interval     — the two-sided proportion confidence interval that
//                          Algorithm 1's conf_int() relies on.
#pragma once

#include <cstdint>

namespace graphene::util {

/// Solves δ = (s + sqrt(s² + 8s)) / 2 with s = -ln(1-β)/µ (Theorems 1 and 3).
/// Given µ expected Bernoulli successes, (1+δ)µ upper-bounds the observed
/// count with probability ≥ β.
[[nodiscard]] double chernoff_delta(double mu, double beta) noexcept;

/// Multiplicative Chernoff upper tail Pr[X ≥ (1+δ)µ] ≤ (e^δ / (1+δ)^{1+δ})^µ,
/// evaluated in log space for numerical stability. δ ≤ 0 returns 1.
[[nodiscard]] double chernoff_upper_tail(double delta, double mu) noexcept;

/// Two-sided Wilson score interval for `successes` out of `trials` at the
/// given z (default z = 1.96, ~95%). Returns half-width around the Wilson
/// midpoint; `lo`/`hi` convenience accessors included.
struct Interval {
  double center = 0.0;
  double half_width = 0.0;
  [[nodiscard]] double lo() const noexcept { return center - half_width; }
  [[nodiscard]] double hi() const noexcept { return center + half_width; }
};

[[nodiscard]] Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                       double z = 1.96) noexcept;

/// Exact one-sided Clopper–Pearson bounds for a binomial proportion: with
/// probability ≥ `confidence` the true success rate is ≥ the lower bound
/// (resp. ≤ the upper bound). Computed by bisection on the exact binomial
/// tail in log space — no incomplete-beta dependency — so the bounds are
/// conservative for any (successes, trials), including 0 and trials.
/// testkit::StatGate uses these to turn "N trials, s successes" into a
/// CI-gateable verdict about a theorem's promised rate.
[[nodiscard]] double clopper_pearson_lower(std::uint64_t successes, std::uint64_t trials,
                                           double confidence = 0.99) noexcept;
[[nodiscard]] double clopper_pearson_upper(std::uint64_t successes, std::uint64_t trials,
                                           double confidence = 0.99) noexcept;

/// log Pr[Bin(n, p) ≤ k] evaluated stably by summing pmf terms in log space.
[[nodiscard]] double log_binomial_cdf(std::uint64_t k, std::uint64_t n, double p) noexcept;

/// Mean of a Binomial(n, p) — trivially n*p, named for readability at call
/// sites that mirror the paper's formulas.
[[nodiscard]] inline double binomial_mean(double n, double p) noexcept { return n * p; }

}  // namespace graphene::util
