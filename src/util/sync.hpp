// Annotated mutex wrappers for Clang Thread Safety Analysis.
//
// std::mutex and std::shared_mutex carry no capability attributes, so
// -Wthread-safety cannot track std::lock_guard / std::shared_lock holds.
// These zero-cost wrappers delegate 1:1 to the standard types and add the
// annotations; all guarded state in the codebase names one of these types in
// its GUARDED_BY. Waiting is done with std::condition_variable_any, which
// accepts util::Mutex directly as a BasicLockable — the release/reacquire
// inside wait() happens in a system header, where the analysis is silent,
// and the capability is correctly held again when wait() returns.
//
// Idiom (see docs/CONCURRENCY.md):
//
//   util::Mutex mu_;
//   std::deque<Task> queue_ GUARDED_BY(mu_);
//
//   void post(Task t) {
//     const util::MutexLock lock(mu_);
//     queue_.push_back(std::move(t));
//   }
#pragma once

#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.hpp"

namespace graphene::util {

/// Annotated std::mutex. Satisfies BasicLockable/Lockable, so it also works
/// as the lock argument of std::condition_variable_any::wait.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Annotated std::shared_mutex (exclusive writers, shared readers).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive hold of a Mutex (std::lock_guard equivalent).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE_GENERIC() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive hold of a SharedMutex (writer side).
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterLock() RELEASE_GENERIC() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared hold of a SharedMutex (reader side).
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() RELEASE_GENERIC() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace graphene::util
