// Hex encoding/decoding used by txid printing and test vectors.
#pragma once

#include <string>

#include "util/bytes.hpp"

namespace graphene::util {

/// Lowercase hex encoding of `data`.
[[nodiscard]] std::string to_hex(ByteView data);

/// Decodes lowercase or uppercase hex; throws DeserializeError on odd length
/// or non-hex characters.
[[nodiscard]] Bytes from_hex(const std::string& hex);

}  // namespace graphene::util
