#include "util/hex.hpp"

#include <cstddef>
#include <cstdint>
#include <string>

namespace graphene::util {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

Bytes from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) throw DeserializeError("from_hex: odd-length string");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) throw DeserializeError("from_hex: invalid hex character");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace graphene::util
