#include "util/hash.hpp"

namespace graphene::util {

std::array<std::uint64_t, 4> split_digest_words(ByteView digest32) noexcept {
  std::array<std::uint64_t, 4> words{};
  const std::size_t n = digest32.size() < 32 ? digest32.size() : 32;
  for (std::size_t i = 0; i < n; ++i) {
    words[i / 8] |= static_cast<std::uint64_t>(digest32[i]) << (8 * (i % 8));
  }
  return words;
}

std::uint64_t hash64(ByteView data, std::uint64_t seed) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

}  // namespace graphene::util
