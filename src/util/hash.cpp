#include "util/hash.hpp"

#include <cstdint>

namespace graphene::util {

std::uint64_t hash64(ByteView data, std::uint64_t seed) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

}  // namespace graphene::util
