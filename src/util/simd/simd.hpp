// Runtime-dispatched SIMD kernels for the data-plane hot paths.
//
// The portable scalar table is the reference implementation: every ISA
// variant must be bit-exact against it (tests/perf/test_simd_parity.cpp
// pins this with min_rate=1.0 StatGates), so callers can route through
// active() unconditionally. Dispatch is resolved once, on first use, from
// CPU capability detection plus the GRAPHENE_SIMD environment override
// (off|portable|avx2|neon|auto; unknown values fall back to auto, and a
// requested ISA the CPU lacks falls back to portable).
//
// Intrinsics and <immintrin.h>/<arm_neon.h> includes are confined to this
// directory (tools/lint.py enforces the boundary); ISA-specific code lives
// in its own translation unit compiled with the matching -m flags so no
// vector instruction can execute before the capability check.
#pragma once

#include <cstddef>
#include <cstdint>

namespace graphene::util::simd {

enum class Isa : std::uint8_t {
  kPortable = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Function-pointer table for every vectorizable kernel. All pointers are
/// always non-null; unimplemented ISA slots reuse the portable function.
struct Kernels {
  /// Blocked-Bloom probe: test the k bits of the 512-bit block at `block`
  /// (8 little-endian u64 words) visited by the recurrence
  ///   bit = x; x = (x + y) & 511; y = (y + i + 1) & 511
  /// for i in [0, k). Returns true iff every probed bit is set. k <= 63.
  bool (*bloom_test_block)(const std::uint64_t* block, std::uint32_t k,
                           std::uint32_t x, std::uint32_t y);
  /// Blocked-Bloom insert: set the same k bits in the block.
  void (*bloom_set_block)(std::uint64_t* block, std::uint32_t k,
                          std::uint32_t x, std::uint32_t y);

  /// IBLT cell merge-add: for n 16-byte cells laid out as
  ///   { u64 key_sum; i32 count; u32 check_sum }  (host representation)
  /// fold src into dst: key_sum ^= , count += (wrapping), check_sum ^= .
  /// dst and src must not partially overlap.
  void (*cells_add)(void* dst, const void* src, std::size_t n_cells);
  /// IBLT cell subtract: key_sum ^= , count -= (wrapping), check_sum ^= .
  void (*cells_sub)(void* dst, const void* src, std::size_t n_cells);

  /// dst[i] ^= src[i] for i in [0, n). Used by CodedSymbol::apply digest
  /// folds. Buffers must not partially overlap.
  void (*xor_bytes)(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);
  /// True iff every byte in [p, p+n) is zero.
  bool (*all_zero)(const std::uint8_t* p, std::size_t n);
  /// True iff the two n-byte buffers are byte-identical.
  bool (*bytes_equal)(const std::uint8_t* a, const std::uint8_t* b,
                      std::size_t n);
};

/// The kernel table selected for this process (env override + CPU probe,
/// resolved once on first call; subsequent calls are a relaxed atomic load).
[[nodiscard]] const Kernels& active() noexcept;

/// The ISA backing active().
[[nodiscard]] Isa active_isa() noexcept;

/// The ISA auto-dispatch would pick on this CPU, ignoring the env override.
[[nodiscard]] Isa detected_isa() noexcept;

/// Whether this build + CPU can run the given ISA's kernels.
[[nodiscard]] bool isa_available(Isa isa) noexcept;

/// The kernel table for a specific ISA; falls back to portable when the ISA
/// is unavailable. Lets benches and parity tests compare variants directly.
[[nodiscard]] const Kernels& kernels_for(Isa isa) noexcept;

[[nodiscard]] const char* isa_name(Isa isa) noexcept;

/// Test-only: force active() to a specific ISA for the lifetime of the
/// object (falls back to portable if unavailable). Not thread-safe against
/// concurrent hot-path use — parity tests drive kernels single-threaded.
class ScopedIsaOverride {
 public:
  explicit ScopedIsaOverride(Isa isa) noexcept;
  ~ScopedIsaOverride();
  ScopedIsaOverride(const ScopedIsaOverride&) = delete;
  ScopedIsaOverride& operator=(const ScopedIsaOverride&) = delete;

 private:
  Isa prev_;
};

}  // namespace graphene::util::simd
