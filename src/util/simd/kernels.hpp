// Internal: per-ISA kernel table constructors. Only dispatch.cpp and the
// ISA translation units include this; external callers go through simd.hpp.
#pragma once

#include "util/simd/simd.hpp"

namespace graphene::util::simd::detail {

[[nodiscard]] const Kernels& portable_kernels() noexcept;

#if defined(GRAPHENE_SIMD_HAVE_AVX2)
[[nodiscard]] const Kernels& avx2_kernels() noexcept;
#endif

#if defined(GRAPHENE_SIMD_HAVE_NEON)
[[nodiscard]] const Kernels& neon_kernels() noexcept;
#endif

}  // namespace graphene::util::simd::detail
