// NEON kernel variants (aarch64). NEON is architecturally mandatory on
// aarch64, so unlike AVX2 there is no runtime capability probe — the gate
// is compile-time only. Untested on x86 CI; kept deliberately simple and
// pinned by the same bit-exactness parity gates when run on arm hardware.

#include "util/simd/kernels.hpp"

#if defined(GRAPHENE_SIMD_HAVE_NEON)

#include <arm_neon.h>

#include <cstring>

namespace graphene::util::simd::detail {
namespace {

constexpr std::uint32_t kBlockMask = 511;
constexpr std::size_t kCellBytes = 16;

void build_probe_mask(std::uint64_t* mask, std::uint32_t k, std::uint32_t x,
                      std::uint32_t y) {
  for (std::uint32_t i = 0; i < k; ++i) {
    mask[x >> 6] |= (1ULL << (x & 63));
    x = (x + y) & kBlockMask;
    y = (y + i + 1) & kBlockMask;
  }
}

bool bloom_test_block_neon(const std::uint64_t* block, std::uint32_t k,
                           std::uint32_t x, std::uint32_t y) {
  std::uint64_t mask[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  build_probe_mask(mask, k, x, y);
  // Accumulate (block & mask) ^ mask over the four 128-bit lanes: zero iff
  // every probed bit is set.
  uint8x16_t acc = vdupq_n_u8(0);
  for (int lane = 0; lane < 4; ++lane) {
    const uint64x2_t b = vld1q_u64(block + 2 * lane);
    const uint64x2_t m = vld1q_u64(mask + 2 * lane);
    const uint64x2_t miss = veorq_u64(vandq_u64(b, m), m);
    acc = vorrq_u8(acc, vreinterpretq_u8_u64(miss));
  }
  return vmaxvq_u8(acc) == 0;
}

void bloom_set_block_neon(std::uint64_t* block, std::uint32_t k,
                          std::uint32_t x, std::uint32_t y) {
  std::uint64_t mask[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  build_probe_mask(mask, k, x, y);
  for (int lane = 0; lane < 4; ++lane) {
    const uint64x2_t b = vld1q_u64(block + 2 * lane);
    const uint64x2_t m = vld1q_u64(mask + 2 * lane);
    vst1q_u64(block + 2 * lane, vorrq_u64(b, m));
  }
}

// One 16-byte cell per 128-bit op: XOR everything, add/sub the u32 lanes,
// then select the count lane (bytes 8..11 = u32 lane 2) from the arithmetic
// result via a bit-select mask.
template <bool Add>
void cells_addsub_neon(void* dst, const void* src, std::size_t n_cells) {
  static const std::uint32_t kCountLane[4] = {0u, 0u, ~0u, 0u};
  const uint8x16_t count_mask = vreinterpretq_u8_u32(vld1q_u32(kCountLane));
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* s = static_cast<const std::uint8_t*>(src);
  for (std::size_t c = 0; c < n_cells; ++c, d += kCellBytes, s += kCellBytes) {
    const uint8x16_t a = vld1q_u8(d);
    const uint8x16_t b = vld1q_u8(s);
    const uint8x16_t x = veorq_u8(a, b);
    const uint32x4_t aw = vreinterpretq_u32_u8(a);
    const uint32x4_t bw = vreinterpretq_u32_u8(b);
    const uint32x4_t m = Add ? vaddq_u32(aw, bw) : vsubq_u32(aw, bw);
    vst1q_u8(d, vbslq_u8(count_mask, vreinterpretq_u8_u32(m), x));
  }
}

void cells_add_neon(void* dst, const void* src, std::size_t n_cells) {
  cells_addsub_neon<true>(dst, src, n_cells);
}

void cells_sub_neon(void* dst, const void* src, std::size_t n_cells) {
  cells_addsub_neon<false>(dst, src, n_cells);
}

void xor_bytes_neon(std::uint8_t* dst, const std::uint8_t* src,
                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), vld1q_u8(src + i)));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

bool all_zero_neon(const std::uint8_t* p, std::size_t n) {
  uint8x16_t acc = vdupq_n_u8(0);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) acc = vorrq_u8(acc, vld1q_u8(p + i));
  std::uint8_t tail = 0;
  for (; i < n; ++i) tail = static_cast<std::uint8_t>(tail | p[i]);
  return vmaxvq_u8(acc) == 0 && tail == 0;
}

bool bytes_equal_neon(const std::uint8_t* a, const std::uint8_t* b,
                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t diff = veorq_u8(vld1q_u8(a + i), vld1q_u8(b + i));
    if (vmaxvq_u8(diff) != 0) return false;
  }
  return i == n || std::memcmp(a + i, b + i, n - i) == 0;
}

}  // namespace

const Kernels& neon_kernels() noexcept {
  static constexpr Kernels kTable{
      &bloom_test_block_neon, &bloom_set_block_neon, &cells_add_neon,
      &cells_sub_neon,        &xor_bytes_neon,       &all_zero_neon,
      &bytes_equal_neon,
  };
  return kTable;
}

}  // namespace graphene::util::simd::detail

#endif  // GRAPHENE_SIMD_HAVE_NEON
