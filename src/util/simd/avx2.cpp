// AVX2 kernel variants. This translation unit is the only x86 code compiled
// with -mavx2 (see src/CMakeLists.txt); it must never execute unless
// dispatch.cpp confirmed __builtin_cpu_supports("avx2"), so nothing here may
// leak into a header or be called at static-init time.

#include "util/simd/kernels.hpp"

#if defined(GRAPHENE_SIMD_HAVE_AVX2)

#include <immintrin.h>

#include <cstring>

namespace graphene::util::simd::detail {
namespace {

constexpr std::uint32_t kBlockMask = 511;
constexpr std::size_t kCellBytes = 16;

// The probe recurrence is cheap scalar work (k <= 63 iterations of two adds
// and two masks); the win is replacing k dependent load+branch pairs with
// one branch-free 64-byte masked compare.
void build_probe_mask(std::uint64_t* mask, std::uint32_t k, std::uint32_t x,
                      std::uint32_t y) {
  for (std::uint32_t i = 0; i < k; ++i) {
    mask[x >> 6] |= (1ULL << (x & 63));
    x = (x + y) & kBlockMask;
    y = (y + i + 1) & kBlockMask;
  }
}

bool bloom_test_block_avx2(const std::uint64_t* block, std::uint32_t k,
                           std::uint32_t x, std::uint32_t y) {
  alignas(32) std::uint64_t mask[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  build_probe_mask(mask, k, x, y);
  const __m256i m0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(mask));
  const __m256i m1 =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(mask + 4));
  const __m256i b0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block));
  const __m256i b1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + 4));
  const __m256i hit0 = _mm256_cmpeq_epi64(_mm256_and_si256(b0, m0), m0);
  const __m256i hit1 = _mm256_cmpeq_epi64(_mm256_and_si256(b1, m1), m1);
  return _mm256_movemask_epi8(_mm256_and_si256(hit0, hit1)) == -1;
}

void bloom_set_block_avx2(std::uint64_t* block, std::uint32_t k,
                          std::uint32_t x, std::uint32_t y) {
  alignas(32) std::uint64_t mask[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  build_probe_mask(mask, k, x, y);
  auto* p0 = reinterpret_cast<__m256i*>(block);
  auto* p1 = reinterpret_cast<__m256i*>(block + 4);
  const __m256i m0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(mask));
  const __m256i m1 =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(mask + 4));
  _mm256_storeu_si256(p0, _mm256_or_si256(_mm256_loadu_si256(p0), m0));
  _mm256_storeu_si256(p1, _mm256_or_si256(_mm256_loadu_si256(p1), m1));
}

// Two 16-byte cells per 256-bit lane: XOR the whole vector (right for
// key_sum and check_sum), add/sub the epi32 lanes (right for count), then
// blend the count lanes (epi32 lanes 2 and 6) from the arithmetic result.
template <bool Add>
void cells_addsub_avx2(void* dst, const void* src, std::size_t n_cells) {
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* s = static_cast<const std::uint8_t*>(src);
  std::size_t c = 0;
  for (; c + 2 <= n_cells; c += 2, d += 2 * kCellBytes, s += 2 * kCellBytes) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d));
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s));
    const __m256i x = _mm256_xor_si256(a, b);
    const __m256i m =
        Add ? _mm256_add_epi32(a, b) : _mm256_sub_epi32(a, b);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d),
                        _mm256_blend_epi32(x, m, 0b01000100));
  }
  if (c < n_cells) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(d));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s));
    const __m128i x = _mm_xor_si128(a, b);
    const __m128i m = Add ? _mm_add_epi32(a, b) : _mm_sub_epi32(a, b);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d),
                     _mm_blend_epi32(x, m, 0b0100));
  }
}

void cells_add_avx2(void* dst, const void* src, std::size_t n_cells) {
  cells_addsub_avx2<true>(dst, src, n_cells);
}

void cells_sub_avx2(void* dst, const void* src, std::size_t n_cells) {
  cells_addsub_avx2<false>(dst, src, n_cells);
}

void xor_bytes_avx2(std::uint8_t* dst, const std::uint8_t* src,
                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, b));
  }
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

bool all_zero_avx2(const std::uint8_t* p, std::size_t n) {
  std::size_t i = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; i + 32 <= n; i += 32) {
    acc = _mm256_or_si256(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)));
  }
  if (_mm256_testz_si256(acc, acc) == 0) return false;
  std::uint64_t tail = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w = 0;
    std::memcpy(&w, p + i, 8);
    tail |= w;
  }
  for (; i < n; ++i) tail |= p[i];
  return tail == 0;
}

bool bytes_equal_avx2(const std::uint8_t* a, const std::uint8_t* b,
                      std::size_t n) {
  // Deliberately the same body as portable: glibc's IFUNC-dispatched memcmp
  // already runs an AVX2 kernel at L1 bandwidth, and both hand-rolled vptest
  // variants we benchmarked (per-vector test, 128-byte unroll) measured
  // slower on long equal buffers. Keeping the slot on memcmp means this
  // table never regresses below libc; bench_hotpath records the comparison.
  return n == 0 || std::memcmp(a, b, n) == 0;
}

}  // namespace

const Kernels& avx2_kernels() noexcept {
  static constexpr Kernels kTable{
      &bloom_test_block_avx2, &bloom_set_block_avx2, &cells_add_avx2,
      &cells_sub_avx2,        &xor_bytes_avx2,       &all_zero_avx2,
      &bytes_equal_avx2,
  };
  return kTable;
}

}  // namespace graphene::util::simd::detail

#endif  // GRAPHENE_SIMD_HAVE_AVX2
