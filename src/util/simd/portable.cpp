// Portable scalar reference kernels. Every ISA variant is tested bit-exact
// against these; keep them boring and obviously correct.

#include <cstring>

#include "util/simd/kernels.hpp"

namespace graphene::util::simd::detail {
namespace {

constexpr std::uint32_t kBlockMask = 511;  // 512-bit blocked-Bloom block
constexpr std::size_t kCellBytes = 16;

bool bloom_test_block_portable(const std::uint64_t* block, std::uint32_t k,
                               std::uint32_t x, std::uint32_t y) {
  for (std::uint32_t i = 0; i < k; ++i) {
    if ((block[x >> 6] & (1ULL << (x & 63))) == 0) return false;
    x = (x + y) & kBlockMask;
    y = (y + i + 1) & kBlockMask;
  }
  return true;
}

void bloom_set_block_portable(std::uint64_t* block, std::uint32_t k,
                              std::uint32_t x, std::uint32_t y) {
  for (std::uint32_t i = 0; i < k; ++i) {
    block[x >> 6] |= (1ULL << (x & 63));
    x = (x + y) & kBlockMask;
    y = (y + i + 1) & kBlockMask;
  }
}

// Cell lanes are folded through fixed-width unsigned types via memcpy, so
// the arithmetic (XOR / wrapping add) matches the in-memory representation
// the vector variants operate on directly.
void cells_add_portable(void* dst, const void* src, std::size_t n_cells) {
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* s = static_cast<const std::uint8_t*>(src);
  for (std::size_t c = 0; c < n_cells; ++c, d += kCellBytes, s += kCellBytes) {
    std::uint64_t dk = 0;
    std::uint64_t sk = 0;
    std::memcpy(&dk, d, 8);
    std::memcpy(&sk, s, 8);
    dk ^= sk;
    std::memcpy(d, &dk, 8);
    std::uint32_t dc = 0;
    std::uint32_t sc = 0;
    std::memcpy(&dc, d + 8, 4);
    std::memcpy(&sc, s + 8, 4);
    dc += sc;
    std::memcpy(d + 8, &dc, 4);
    std::uint32_t dh = 0;
    std::uint32_t sh = 0;
    std::memcpy(&dh, d + 12, 4);
    std::memcpy(&sh, s + 12, 4);
    dh ^= sh;
    std::memcpy(d + 12, &dh, 4);
  }
}

void cells_sub_portable(void* dst, const void* src, std::size_t n_cells) {
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* s = static_cast<const std::uint8_t*>(src);
  for (std::size_t c = 0; c < n_cells; ++c, d += kCellBytes, s += kCellBytes) {
    std::uint64_t dk = 0;
    std::uint64_t sk = 0;
    std::memcpy(&dk, d, 8);
    std::memcpy(&sk, s, 8);
    dk ^= sk;
    std::memcpy(d, &dk, 8);
    std::uint32_t dc = 0;
    std::uint32_t sc = 0;
    std::memcpy(&dc, d + 8, 4);
    std::memcpy(&sc, s + 8, 4);
    dc -= sc;
    std::memcpy(d + 8, &dc, 4);
    std::uint32_t dh = 0;
    std::uint32_t sh = 0;
    std::memcpy(&dh, d + 12, 4);
    std::memcpy(&sh, s + 12, 4);
    dh ^= sh;
    std::memcpy(d + 12, &dh, 4);
  }
}

void xor_bytes_portable(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

bool all_zero_portable(const std::uint8_t* p, std::size_t n) {
  std::uint64_t acc = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w = 0;
    std::memcpy(&w, p + i, 8);
    acc |= w;
  }
  for (; i < n; ++i) acc |= p[i];
  return acc == 0;
}

bool bytes_equal_portable(const std::uint8_t* a, const std::uint8_t* b,
                          std::size_t n) {
  return n == 0 || std::memcmp(a, b, n) == 0;
}

}  // namespace

const Kernels& portable_kernels() noexcept {
  static constexpr Kernels kTable{
      &bloom_test_block_portable, &bloom_set_block_portable,
      &cells_add_portable,        &cells_sub_portable,
      &xor_bytes_portable,        &all_zero_portable,
      &bytes_equal_portable,
  };
  return kTable;
}

}  // namespace graphene::util::simd::detail
