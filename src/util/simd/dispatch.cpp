// Runtime ISA selection: CPU capability probe + GRAPHENE_SIMD env override,
// resolved once on first use. The resolved table is published through a
// relaxed atomic so hot-path callers pay one load, no lock.

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/simd/kernels.hpp"

namespace graphene::util::simd {
namespace {

bool cpu_has_avx2() noexcept {
#if defined(GRAPHENE_SIMD_HAVE_AVX2)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

constexpr bool kHaveNeon =
#if defined(GRAPHENE_SIMD_HAVE_NEON)
    true;
#else
    false;
#endif

const Kernels* table_for(Isa isa) noexcept {
  switch (isa) {
#if defined(GRAPHENE_SIMD_HAVE_AVX2)
    case Isa::kAvx2:
      return &detail::avx2_kernels();
#endif
#if defined(GRAPHENE_SIMD_HAVE_NEON)
    case Isa::kNeon:
      return &detail::neon_kernels();
#endif
    default:
      return &detail::portable_kernels();
  }
}

Isa pick_auto() noexcept {
  if (cpu_has_avx2()) return Isa::kAvx2;
  if (kHaveNeon) return Isa::kNeon;
  return Isa::kPortable;
}

/// GRAPHENE_SIMD: off|portable -> portable; avx2/neon -> that ISA when
/// available, else portable; auto/unset/unknown -> best available.
Isa pick_startup_isa() noexcept {
  const char* env = std::getenv("GRAPHENE_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "portable") == 0 ||
        std::strcmp(env, "scalar") == 0) {
      return Isa::kPortable;
    }
    if (std::strcmp(env, "avx2") == 0) {
      return cpu_has_avx2() ? Isa::kAvx2 : Isa::kPortable;
    }
    if (std::strcmp(env, "neon") == 0) {
      return kHaveNeon ? Isa::kNeon : Isa::kPortable;
    }
  }
  return pick_auto();
}

struct Dispatch {
  std::atomic<const Kernels*> table{nullptr};
  std::atomic<Isa> isa{Isa::kPortable};
};

Dispatch& dispatch() noexcept {
  static Dispatch d;
  return d;
}

const Kernels* resolve() noexcept {
  Dispatch& d = dispatch();
  const Isa isa = pick_startup_isa();
  const Kernels* table = table_for(isa);
  d.isa.store(isa, std::memory_order_relaxed);
  // Release pairs with the acquire in active(): an override racing first use
  // still leaves a fully-initialized table visible.
  d.table.store(table, std::memory_order_release);
  return table;
}

}  // namespace

const Kernels& active() noexcept {
  const Kernels* table = dispatch().table.load(std::memory_order_acquire);
  if (table == nullptr) table = resolve();
  return *table;
}

Isa active_isa() noexcept {
  static_cast<void>(active());  // force resolution
  return dispatch().isa.load(std::memory_order_relaxed);
}

Isa detected_isa() noexcept { return pick_auto(); }

bool isa_available(Isa isa) noexcept {
  switch (isa) {
    case Isa::kPortable:
      return true;
    case Isa::kAvx2:
      return cpu_has_avx2();
    case Isa::kNeon:
      return kHaveNeon;
  }
  return false;
}

const Kernels& kernels_for(Isa isa) noexcept {
  return isa_available(isa) ? *table_for(isa) : detail::portable_kernels();
}

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kPortable:
      return "portable";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

ScopedIsaOverride::ScopedIsaOverride(Isa isa) noexcept : prev_(active_isa()) {
  if (!isa_available(isa)) isa = Isa::kPortable;
  Dispatch& d = dispatch();
  d.isa.store(isa, std::memory_order_relaxed);
  d.table.store(table_for(isa), std::memory_order_release);
}

ScopedIsaOverride::~ScopedIsaOverride() {
  Dispatch& d = dispatch();
  d.isa.store(prev_, std::memory_order_relaxed);
  d.table.store(table_for(prev_), std::memory_order_release);
}

}  // namespace graphene::util::simd
