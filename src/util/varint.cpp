#include "util/varint.hpp"

#include <cstddef>
#include <cstdint>
#include <string>

namespace graphene::util {

void write_varint(ByteWriter& w, std::uint64_t v) {
  if (v < 0xfd) {
    w.u8(static_cast<std::uint8_t>(v));
  } else if (v <= 0xffff) {
    w.u8(0xfd);
    w.u16(static_cast<std::uint16_t>(v));
  } else if (v <= 0xffffffff) {
    w.u8(0xfe);
    w.u32(static_cast<std::uint32_t>(v));
  } else {
    w.u8(0xff);
    w.u64(v);
  }
}

std::uint64_t read_varint(ByteReader& r) {
  const std::uint8_t marker = r.u8();
  std::uint64_t v = 0;
  if (marker < 0xfd) return marker;
  if (marker == 0xfd) {
    v = r.u16();
    if (v < 0xfd) throw DeserializeError("varint: non-canonical 2-byte encoding");
  } else if (marker == 0xfe) {
    v = r.u32();
    if (v <= 0xffff) throw DeserializeError("varint: non-canonical 4-byte encoding");
  } else {
    v = r.u64();
    if (v <= 0xffffffff) throw DeserializeError("varint: non-canonical 8-byte encoding");
  }
  return v;
}

std::uint64_t read_varint_bounded(ByteReader& r, std::uint64_t max, const char* field) {
  const std::uint64_t v = read_varint(r);
  if (v > max) {
    throw DeserializeError(std::string(field) + ": length " + std::to_string(v) +
                           " exceeds wire limit " + std::to_string(max));
  }
  return v;
}

std::size_t varint_size(std::uint64_t v) noexcept {
  if (v < 0xfd) return 1;
  if (v <= 0xffff) return 3;
  if (v <= 0xffffffff) return 5;
  return 9;
}

}  // namespace graphene::util
