// Portable Clang Thread Safety Analysis annotations.
//
// The concurrent core (util::ThreadPool, iblt::ParamCache, obs::Registry /
// TraceSink / FlightRecorder, testkit::FaultyChannel) documents its lock
// discipline with these macros; clang's -Wthread-safety then proves at
// compile time that every access to a GUARDED_BY member happens with the
// named capability held. GCC and MSVC see empty macros, so the annotations
// cost nothing outside the clang CI legs (which build with
// -Wthread-safety -Werror — see docs/STATIC_ANALYSIS.md).
//
// The macro set mirrors the standard names from the clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Annotate with the
// uppercase macros; never spell the underlying attributes directly — the
// macros are the single portability seam.
//
// std::mutex / std::shared_mutex are NOT annotated types, so the analysis
// cannot see their acquire/release through std::lock_guard /
// std::unique_lock. util/sync.hpp provides the thin annotated wrappers
// (util::Mutex, util::SharedMutex, util::MutexLock, ...) that the codebase
// uses instead.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define GRAPHENE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GRAPHENE_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a capability ("mutex", "shared_mutex", ...).
#define CAPABILITY(x) GRAPHENE_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose lifetime equals a capability hold.
#define SCOPED_CAPABILITY GRAPHENE_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the capability held.
#define GUARDED_BY(x) GRAPHENE_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the capability.
#define PT_GUARDED_BY(x) GRAPHENE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering: this capability must be acquired before / after others.
#define ACQUIRED_BEFORE(...) GRAPHENE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) GRAPHENE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function requires the capability held (exclusively / shared) on entry.
#define REQUIRES(...) GRAPHENE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  GRAPHENE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define ACQUIRE(...) GRAPHENE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) GRAPHENE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (held on entry).
#define RELEASE(...) GRAPHENE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) GRAPHENE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) GRAPHENE_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function acquires the capability only when returning `ret`.
#define TRY_ACQUIRE(...) GRAPHENE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  GRAPHENE_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define EXCLUDES(...) GRAPHENE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function asserts the capability is already held (runtime-checked lock).
#define ASSERT_CAPABILITY(x) GRAPHENE_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) GRAPHENE_THREAD_ANNOTATION(assert_shared_capability(x))

/// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) GRAPHENE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot model; every use needs a
/// justification comment — keep these as rare as tidy suppressions (which
/// tools/lint.py holds to the same standard).
#define NO_THREAD_SAFETY_ANALYSIS GRAPHENE_THREAD_ANNOTATION(no_thread_safety_analysis)
