// Generic set reconciliation, decoupled from blockchains.
//
// The paper (§1) notes the method "applies in general to systems that
// require set reconciliation, such as database or file system
// synchronization among replicas. Or ... CRLite, where a client regularly
// checks a server for revocations of observed certificates."
//
// Host and Client are thin session drivers over a pluggable reconciliation
// backend (see backend.hpp) selected by core::ProtocolConfig::
// reconcile_backend:
//
//   kGraphene      — the paper's S + I construction with the R + J recovery
//                    of Protocol 2 (graphene_backend.hpp; the typed Offer/
//                    Request/Response API below drives it directly)
//   kRatelessIblt  — a rateless coded-symbol stream per arXiv 2402.02668
//                    (rateless_backend.hpp) with no decode-failure mode
//
// One-way reconciliation (client learns the host's set) is the primitive;
// two-way union is two one-way passes, exactly like §3.2.1. The backend-
// agnostic loop is reconcile_one_way(Host&, Client&, Outcome&); the typed
// Graphene message flow (absorb/make_request/complete/...) is unchanged and
// byte-identical to the pre-backend code.
#pragma once

#include <memory>
#include <vector>

#include "graphene/params.hpp"
#include "reconcile/backend.hpp"
#include "reconcile/graphene_backend.hpp"
#include "reconcile/types.hpp"

namespace graphene::reconcile {

/// Host (sender) side. The host set is fixed at construction. The typed
/// Graphene methods (make_offer/serve/serve_fetch) throw std::logic_error
/// unless cfg.reconcile_backend == kGraphene; the wire API (open/serve_wire)
/// works for every backend.
class Host {
 public:
  Host(ItemSet items, std::uint64_t salt, core::ProtocolConfig cfg = {});

  /// Opens a session for a client reporting `client_count` items.
  [[nodiscard]] WireMsg open(std::uint64_t client_count);

  /// Answers one client message.
  [[nodiscard]] WireMsg serve_wire(const WireMsg& request);

  /// Builds an offer for a client reporting `client_count` items
  /// (Graphene backend only).
  [[nodiscard]] Offer make_offer(std::uint64_t client_count) const;

  /// Answers a repair request (Graphene backend only).
  [[nodiscard]] Response serve(const Request& request) const;

  /// Answers a fetch-by-short-ID request (Graphene backend only).
  [[nodiscard]] FetchResponse serve_fetch(const FetchRequest& request) const;

  [[nodiscard]] const ItemSet& items() const noexcept { return items_; }

 private:
  [[nodiscard]] const GrapheneHostBackend& graphene() const;

  ItemSet items_;
  std::unique_ptr<HostBackend> backend_;
  GrapheneHostBackend* graphene_ = nullptr;  ///< borrowed from backend_
};

/// Client (receiver) side. The wire API (absorb_wire/next_request) drives
/// any backend; the typed Graphene flow — after `absorb(offer)` either the
/// host set is known, or `make_request()` / `complete(response)` runs the
/// recovery round — throws std::logic_error for non-Graphene backends.
class Client {
 public:
  Client(const ItemSet& items, core::ProtocolConfig cfg = {});

  [[nodiscard]] Outcome absorb_wire(const WireMsg& msg);
  [[nodiscard]] WireMsg next_request();

  Outcome absorb(const Offer& offer);
  /// Mutates by design: the chosen Protocol 2 parameters (b, y*, f_R,
  /// reversed) must be remembered so complete() can mirror the host's
  /// correction IBLT and compensation pass — a const make_request() would
  /// force every caller to thread that state back in by hand.
  [[nodiscard]] Request make_request();
  Outcome complete(const Response& response);
  [[nodiscard]] FetchRequest make_fetch() const;
  Outcome complete_fetch(const FetchResponse& response);

  [[nodiscard]] std::uint64_t local_count() const noexcept { return items_->size(); }
  [[nodiscard]] const core::ProtocolConfig& config() const noexcept { return cfg_; }

 private:
  [[nodiscard]] GrapheneClientBackend& graphene() const;

  const ItemSet* items_;
  core::ProtocolConfig cfg_;
  std::unique_ptr<ClientBackend> backend_;
  GrapheneClientBackend* graphene_ = nullptr;  ///< borrowed from backend_
};

/// Byte/round accounting for one reconciliation session. round_bytes holds
/// the payload size of every message in exchange order (offer, then each
/// request/response pair — or chunk/need for the rateless backend).
struct SyncStats {
  bool success = false;
  bool used_request_round = false;
  bool used_fetch_round = false;
  std::vector<std::size_t> round_bytes;
  std::uint64_t symbols_consumed = 0;  ///< rateless backend only
  std::uint64_t round_trips = 0;       ///< messages initiated by the client + 1

  [[nodiscard]] std::size_t total_bytes() const noexcept {
    std::size_t total = 0;
    for (const std::size_t b : round_bytes) total += b;
    return total;
  }

  // Legacy per-round accessors, mapped onto the Graphene message sequence
  // (offer | request response | fetch fetch-response). Kept as thin wrappers
  // for one release — new code should read round_bytes directly.
  [[nodiscard]] std::size_t offer_bytes() const noexcept {
    return round_bytes.empty() ? 0 : round_bytes[0];
  }
  [[nodiscard]] std::size_t request_bytes() const noexcept {
    return used_request_round && round_bytes.size() > 1 ? round_bytes[1] : 0;
  }
  [[nodiscard]] std::size_t response_bytes() const noexcept {
    return used_request_round && round_bytes.size() > 2 ? round_bytes[2] : 0;
  }
  [[nodiscard]] std::size_t fetch_bytes() const noexcept {
    std::size_t total = 0;
    for (std::size_t i = 3; i < round_bytes.size(); ++i) total += round_bytes[i];
    return total;
  }
};

/// Backend-agnostic driver: opens the session, then relays client requests
/// to the host until the outcome is terminal. Termination is structural —
/// cfg.reconcile_round_cap bounds the loop no matter what a backend reports.
SyncStats reconcile_one_way(Host& host, Client& client, Outcome& outcome);

/// Typed Graphene convenience driver (the pre-backend API): the caller made
/// the offer already; runs the repair and fetch rounds as needed.
SyncStats reconcile_one_way(const Host& host, Client& client, const Offer& offer,
                            Outcome& outcome);

}  // namespace graphene::reconcile
