// Generic Graphene set reconciliation, decoupled from blockchains.
//
// The paper (§1) notes the method "applies in general to systems that
// require set reconciliation, such as database or file system
// synchronization among replicas. Or ... CRLite, where a client regularly
// checks a server for revocations of observed certificates."
//
// This facade reconciles sets of opaque 32-byte item digests (hash your
// records however you like) using the same S + I construction as Protocol 1
// and the R + J recovery of Protocol 2, but with a library-style API:
//
//   reconcile::Offer     — host's digest of its set (Bloom filter + IBLT)
//   reconcile::Request   — client's repair request when the offer alone is
//                          not decodable
//   reconcile::Response  — host's missing items + correction IBLT
//
// One-way reconciliation (client learns the host's set) is the primitive;
// two-way union is two one-way passes, exactly like §3.2.1.
#pragma once

#include <array>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graphene/messages.hpp"
#include "graphene/params.hpp"

namespace graphene::reconcile {

/// Items are identified by 32-byte digests (e.g. SHA-256 of the record).
using ItemDigest = std::array<std::uint8_t, 32>;

struct DigestHasher {
  std::size_t operator()(const ItemDigest& d) const noexcept {
    std::size_t h = 0;
    for (int i = 0; i < 8; ++i) h |= static_cast<std::size_t>(d[static_cast<std::size_t>(i)]) << (8 * i);
    return h;
  }
};

using ItemSet = std::unordered_set<ItemDigest, DigestHasher>;

/// Host-side digest of a set, sized for a client holding ~`client_count`
/// items that include (most of) the host's set.
struct Offer {
  std::uint64_t count = 0;        ///< |host set|
  std::uint64_t salt = 0;         ///< keys the 8-byte short IDs
  std::uint64_t set_checksum = 0; ///< xor of mix64(short id) over the host set —
                                  ///< the client's final exactness check (the
                                  ///< blockchain protocol uses the Merkle root)
  bloom::BloomFilter filter;      ///< S over the full digests
  iblt::Iblt correction;          ///< I over the short IDs

  [[nodiscard]] util::Bytes serialize() const;
  static Offer deserialize(util::ByteReader& reader);
  [[nodiscard]] std::size_t serialized_size() const noexcept;
};

/// Client-side repair request (Protocol 2 step 2 analogue).
struct Request {
  std::uint64_t candidate_count = 0;  ///< z
  std::uint64_t b = 1;
  std::uint64_t y_star = 1;
  double fpr_r = 1.0;
  bool reversed = false;
  bloom::BloomFilter filter;  ///< R over the client's candidate digests

  [[nodiscard]] util::Bytes serialize() const;
  static Request deserialize(util::ByteReader& reader);
};

/// Host's answer: items the client certainly lacks plus IBLT J.
struct Response {
  std::vector<ItemDigest> missing;
  iblt::Iblt correction;
  std::optional<bloom::BloomFilter> compensation;  ///< F, reversed path only

  [[nodiscard]] util::Bytes serialize() const;
  static Response deserialize(util::ByteReader& reader);
};

/// Final round: short IDs the client decoded as host-only but cannot map to
/// a digest (they were hidden by R's false positives).
struct FetchRequest {
  std::vector<std::uint64_t> short_ids;
  [[nodiscard]] util::Bytes serialize() const;
  static FetchRequest deserialize(util::ByteReader& reader);
};

struct FetchResponse {
  std::vector<ItemDigest> items;
  [[nodiscard]] util::Bytes serialize() const;
  static FetchResponse deserialize(util::ByteReader& reader);
};

/// Host (sender) side. The host set is fixed at construction.
class Host {
 public:
  Host(ItemSet items, std::uint64_t salt, core::ProtocolConfig cfg = {});

  /// Builds an offer for a client reporting `client_count` items.
  [[nodiscard]] Offer make_offer(std::uint64_t client_count) const;

  /// Answers a repair request.
  [[nodiscard]] Response serve(const Request& request) const;

  /// Answers a fetch-by-short-ID request.
  [[nodiscard]] FetchResponse serve_fetch(const FetchRequest& request) const;

  [[nodiscard]] const ItemSet& items() const noexcept { return items_; }

 private:
  ItemSet items_;
  std::uint64_t salt_;
  core::ProtocolConfig cfg_;
};

/// Result of a client-side reconciliation attempt.
struct Outcome {
  enum class Status { kComplete, kNeedsRequest, kNeedsFetch, kFailed };
  Status status = Status::kFailed;
  /// The host's set as learned by the client (valid when kComplete). Items
  /// the client already held are included.
  ItemSet host_set;
  /// Short IDs decoded as host-only but with no digest known — the caller
  /// must fetch these out of band (or fail). Empty in normal operation.
  std::vector<std::uint64_t> unresolved;
};

/// Client (receiver) side. Drives the one-way reconciliation: after
/// `absorb(offer)` either the host set is known, or `make_request()` /
/// `complete(response)` runs the recovery round.
class Client {
 public:
  Client(const ItemSet& items, core::ProtocolConfig cfg = {});

  Outcome absorb(const Offer& offer);
  [[nodiscard]] Request make_request();
  Outcome complete(const Response& response);
  [[nodiscard]] FetchRequest make_fetch() const;
  Outcome complete_fetch(const FetchResponse& response);

 private:
  Outcome finalize();
  [[nodiscard]] std::uint64_t sid(const ItemDigest& d) const noexcept;
  void index(const ItemDigest& d);
  /// Short IDs of the current candidate set, in iteration order — the batch
  /// input for the IBLT mirror builds.
  [[nodiscard]] std::vector<std::uint64_t> candidate_sids() const;

  const ItemSet* items_;
  core::ProtocolConfig cfg_;
  Offer offer_{};
  core::Protocol2Params params2_{};
  std::unordered_map<std::uint64_t, ItemDigest> sid_to_digest_;
  std::unordered_set<std::uint64_t> ambiguous_;
  ItemSet candidates_;
  std::vector<std::uint64_t> pending_fetch_;
};

/// Convenience: full one-way reconciliation; returns the host set as learned
/// by the client plus the total encoding bytes exchanged.
struct SyncStats {
  bool success = false;
  bool used_request_round = false;
  bool used_fetch_round = false;
  std::size_t offer_bytes = 0;
  std::size_t request_bytes = 0;
  std::size_t response_bytes = 0;
  std::size_t fetch_bytes = 0;
  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return offer_bytes + request_bytes + response_bytes + fetch_bytes;
  }
};

SyncStats reconcile_one_way(const Host& host, Client& client, const Offer& offer,
                            Outcome& outcome);

/// Hashes an arbitrary byte string into an ItemDigest (SHA-256).
[[nodiscard]] ItemDigest digest_of(util::ByteView data) noexcept;

}  // namespace graphene::reconcile
