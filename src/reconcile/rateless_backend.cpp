#include "reconcile/rateless_backend.hpp"

#include <algorithm>

#include "graphene/errors.hpp"
#include "reconcile/flight.hpp"
#include "util/varint.hpp"
#include "util/wire_limits.hpp"

namespace graphene::reconcile {

namespace {

using detail::parse_payload;
using detail::record_decode;
using detail::record_msg;

}  // namespace

// --- wire formats -----------------------------------------------------------

void RatelessChunk::serialize_into(util::ByteWriter& w) const {
  util::write_varint(w, start);
  util::write_varint(w, host_count);
  w.u64(salt);
  w.u64(set_checksum);
  util::write_varint(w, symbols.size());
  for (const iblt::CodedSymbol& s : symbols) {
    w.u64(static_cast<std::uint64_t>(s.count));
    w.u64(s.check);
    w.raw(util::ByteView(s.sum.data(), s.sum.size()));
  }
}

util::Bytes RatelessChunk::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

RatelessChunk RatelessChunk::deserialize(util::ByteReader& reader) {
  RatelessChunk c;
  c.start = util::read_varint_bounded(reader, util::wire::kMaxRatelessStreamIndex,
                                      "reconcile::RatelessChunk start");
  c.host_count = util::read_varint_bounded(reader, util::wire::kMaxWireCollection,
                                           "reconcile::RatelessChunk host_count");
  c.salt = reader.u64();
  c.set_checksum = reader.u64();
  const std::uint64_t count =
      util::read_varint_bounded(reader, util::wire::kMaxRatelessChunkSymbols,
                                "reconcile::RatelessChunk symbols");
  if (count > reader.remaining() / iblt::CodedSymbol::kWireBytes) {
    throw util::DeserializeError("reconcile::RatelessChunk: symbol count exceeds buffer");
  }
  c.symbols.resize(count);
  for (iblt::CodedSymbol& s : c.symbols) {
    s.count = static_cast<std::int64_t>(reader.u64());
    s.check = reader.u64();
    reader.raw_into(s.sum.data(), s.sum.size());
  }
  return c;
}

void RatelessNeed::serialize_into(util::ByteWriter& w) const {
  util::write_varint(w, next_index);
  util::write_varint(w, count);
}

util::Bytes RatelessNeed::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

RatelessNeed RatelessNeed::deserialize(util::ByteReader& reader) {
  RatelessNeed n;
  n.next_index = util::read_varint_bounded(reader, util::wire::kMaxRatelessStreamIndex,
                                           "reconcile::RatelessNeed next_index");
  n.count = util::read_varint_bounded(reader, util::wire::kMaxRatelessChunkSymbols,
                                      "reconcile::RatelessNeed count");
  return n;
}

// --- host -------------------------------------------------------------------

RatelessHostBackend::RatelessHostBackend(const ItemSet& items, std::uint64_t salt,
                                         core::ProtocolConfig cfg)
    : salt_(salt), cfg_(cfg), encoder_(salt) {
  for (const ItemDigest& d : items) encoder_.add_item(d);
  stream_budget_ = 8 * encoder_.item_count() + 1024;
}

RatelessChunk RatelessHostBackend::chunk_for(std::uint64_t start,
                                             std::uint64_t count) {
  while (produced_.size() < start + count) produced_.push_back(encoder_.next_symbol());
  RatelessChunk chunk;
  chunk.start = start;
  chunk.host_count = encoder_.item_count();
  chunk.salt = salt_;
  chunk.set_checksum = encoder_.set_checksum();
  chunk.symbols.assign(produced_.begin() + static_cast<std::ptrdiff_t>(start),
                       produced_.begin() + static_cast<std::ptrdiff_t>(start + count));
  record_msg(obs::enabled(cfg_.obs), obs::FlightEventKind::kMsgSent, "rlchunk", chunk,
             {{"start", static_cast<double>(start)},
              {"symbols", static_cast<double>(count)},
              {"host_count", static_cast<double>(chunk.host_count)}});
  return chunk;
}

WireMsg RatelessHostBackend::open(std::uint64_t client_count) {
  // An honest client needs ~1.35·d < 1.35·(n + m) symbols; budget a few
  // multiples of that so re-requests after faults always fit, while a peer
  // milking the stream for free CPU hits a typed error in bounded work.
  stream_budget_ = std::max(stream_budget_,
                            8 * (encoder_.item_count() + client_count) + 1024);
  const std::uint64_t count = std::max<std::uint64_t>(1, cfg_.rateless_initial_symbols);
  return {net::MessageType::kRatelessChunk, chunk_for(0, count).serialize()};
}

WireMsg RatelessHostBackend::serve_wire(const WireMsg& request) {
  if (request.type != net::MessageType::kRatelessNeed) {
    core::ErrorContext ctx;
    ctx.n = encoder_.item_count();
    throw core::ProtocolError("rateless_serve",
                              "unexpected message type for rateless backend", ctx);
  }
  const RatelessNeed need = parse_payload<RatelessNeed>(request, "reconcile::RatelessNeed");
  const std::uint64_t count = std::clamp<std::uint64_t>(
      need.count, 1, util::wire::kMaxRatelessChunkSymbols);
  if (need.next_index + count > stream_budget_) {
    core::ErrorContext ctx;
    ctx.n = encoder_.item_count();
    ctx.z = need.next_index;
    throw core::ProtocolError("rateless_serve", "symbol request beyond stream budget",
                              ctx);
  }
  return {net::MessageType::kRatelessChunk,
          chunk_for(need.next_index, count).serialize()};
}

// --- client -----------------------------------------------------------------

RatelessClientBackend::RatelessClientBackend(const ItemSet& items,
                                             core::ProtocolConfig cfg)
    : items_(&items), cfg_(cfg) {}

std::uint64_t RatelessClientBackend::symbol_budget() const noexcept {
  return std::max<std::uint64_t>(1024, 4 * (items_->size() + host_count_) + 64);
}

Outcome RatelessClientBackend::fail() {
  failed_ = true;
  Outcome out;
  out.status = Outcome::Status::kFailed;
  if (decoder_) out.symbols_consumed = decoder_->received();
  record_decode(obs::enabled(cfg_.obs), "reconcile_rateless", out.status);
  return out;
}

Outcome RatelessClientBackend::absorb_wire(const WireMsg& msg) {
  if (failed_ || msg.type != net::MessageType::kRatelessChunk) return fail();
  const RatelessChunk chunk = parse_payload<RatelessChunk>(msg, "reconcile::RatelessChunk");
  obs::Registry* reg = obs::enabled(cfg_.obs);
  record_msg(reg, obs::FlightEventKind::kMsgReceived, "rlchunk", chunk,
             {{"start", static_cast<double>(chunk.start)},
              {"symbols", static_cast<double>(chunk.symbols.size())},
              {"host_count", static_cast<double>(chunk.host_count)}});
  if (!started_) {
    salt_ = chunk.salt;
    host_count_ = chunk.host_count;
    set_checksum_ = chunk.set_checksum;
    decoder_.emplace(salt_);
    for (const ItemDigest& d : *items_) decoder_->add_local(d);
    started_ = true;
  } else if (chunk.salt != salt_ || chunk.host_count != host_count_ ||
             chunk.set_checksum != set_checksum_) {
    // The stream header is fixed for a session; a host that changes it
    // mid-flight is describing a different set.
    return fail();
  }

  // Consume in stream order. Symbols before our cursor are duplicates
  // (idempotent re-serves, channel-level retransmits) and are skipped; a
  // chunk starting past the cursor is a gap we cannot peel over, so we keep
  // the cursor and re-request — the host's cache makes the retry identical.
  for (std::size_t i = 0; i < chunk.symbols.size(); ++i) {
    const std::uint64_t index = chunk.start + i;
    if (index < decoder_->received()) continue;
    if (index > decoder_->received()) break;
    decoder_->add_symbol(chunk.symbols[i]);
    if (decoder_->malformed()) return fail();
    if (decoder_->decoded()) break;
  }
  if (decoder_->received() > symbol_budget()) return fail();

  Outcome out;
  out.symbols_consumed = decoder_->received();
  if (decoder_->decoded()) {
    ItemSet host_set = *items_;
    for (const ItemDigest& d : decoder_->negatives()) host_set.erase(d);
    for (const ItemDigest& d : decoder_->positives()) host_set.insert(d);
    std::uint64_t checksum = 0;
    for (const ItemDigest& d : host_set) {
      checksum ^= iblt::coded_symbol_check(d, salt_);
    }
    if (host_set.size() != host_count_ || checksum != set_checksum_) return fail();
    out.status = Outcome::Status::kComplete;
    out.host_set = std::move(host_set);
  } else {
    out.status = Outcome::Status::kNeedsMoreSymbols;
  }
  record_decode(reg, "reconcile_rateless", out.status);
  return out;
}

WireMsg RatelessClientBackend::next_request() {
  if (failed_ || !started_) {
    throw std::logic_error("reconcile: rateless next_request() without an open stream");
  }
  RatelessNeed need;
  need.next_index = decoder_->received();
  // Double the stream each round (ask for as many symbols as we have
  // consumed) so a large difference converges in O(log d) round trips.
  need.count = std::clamp<std::uint64_t>(
      std::max<std::uint64_t>(cfg_.rateless_initial_symbols, decoder_->received()), 1,
      util::wire::kMaxRatelessChunkSymbols);
  record_msg(obs::enabled(cfg_.obs), obs::FlightEventKind::kMsgSent, "rlneed", need,
             {{"next_index", static_cast<double>(need.next_index)},
              {"count", static_cast<double>(need.count)}});
  return {net::MessageType::kRatelessNeed, need.serialize()};
}

}  // namespace graphene::reconcile
