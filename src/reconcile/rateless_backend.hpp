// RatelessIbltBackend: set reconciliation over a rateless coded-symbol
// stream (arXiv 2402.02668) behind the ReconcilerBackend seam.
//
// The host exposes its set as an unbounded symbol stream (iblt::
// RatelessEncoder); the client subtracts its own set and peels (iblt::
// RatelessDecoder), consuming symbols until decode succeeds. There is no
// Algorithm 1 sizing, no decode-failure repair round, and no short-ID fetch:
// an undersized first chunk just means the client asks for the next span of
// the same stream. Messages:
//
//   RatelessChunk — a contiguous span of coded symbols, self-contained
//                   (start index + the host's count/salt/checksum header
//                   repeated, so any chunk can start or resume a session)
//   RatelessNeed  — client → host: "send `count` symbols from `next_index`"
//
// Chunks are bounded by util::wire_limits and fuzz-covered
// (fuzz/fuzz_rateless_chunk.cpp); symbol spans re-serve idempotently from a
// host-side cache, so duplicated or re-requested chunks are byte-identical.
#pragma once

#include <optional>
#include <vector>

#include "graphene/params.hpp"
#include "iblt/coded_symbol.hpp"
#include "reconcile/backend.hpp"
#include "reconcile/types.hpp"

namespace graphene::reconcile {

/// A contiguous span of the host's coded-symbol stream.
struct RatelessChunk {
  std::uint64_t start = 0;         ///< stream index of symbols.front()
  std::uint64_t host_count = 0;    ///< |host set| — the exactness target
  std::uint64_t salt = 0;          ///< keys checksums and index sequences
  std::uint64_t set_checksum = 0;  ///< xor of per-item checksums over the host set
  std::vector<iblt::CodedSymbol> symbols;

  /// Appends the wire encoding to `w` (scatter form of serialize()).

  void serialize_into(util::ByteWriter& w) const;

  [[nodiscard]] util::Bytes serialize() const;
  static RatelessChunk deserialize(util::ByteReader& reader);
};

/// Client's request for more of the stream.
struct RatelessNeed {
  std::uint64_t next_index = 0;  ///< first symbol index not yet consumed
  std::uint64_t count = 0;       ///< symbols wanted in the next chunk

  /// Appends the wire encoding to `w` (scatter form of serialize()).

  void serialize_into(util::ByteWriter& w) const;

  [[nodiscard]] util::Bytes serialize() const;
  static RatelessNeed deserialize(util::ByteReader& reader);
};

/// Host side: wraps a RatelessEncoder and serves idempotent chunk reads.
class RatelessHostBackend final : public HostBackend {
 public:
  RatelessHostBackend(const ItemSet& items, std::uint64_t salt,
                      core::ProtocolConfig cfg);

  [[nodiscard]] WireMsg open(std::uint64_t client_count) override;
  [[nodiscard]] WireMsg serve_wire(const WireMsg& request) override;

  /// Symbols the host has generated so far (cache size), for telemetry.
  [[nodiscard]] std::uint64_t symbols_produced() const noexcept {
    return produced_.size();
  }

 private:
  [[nodiscard]] RatelessChunk chunk_for(std::uint64_t start, std::uint64_t count);

  std::uint64_t salt_;
  core::ProtocolConfig cfg_;
  iblt::RatelessEncoder encoder_;
  std::vector<iblt::CodedSymbol> produced_;  ///< idempotent re-serve cache
  std::uint64_t stream_budget_ = 0;          ///< most symbols we will generate
};

/// Client side: wraps a RatelessDecoder; every absorbed chunk either
/// completes the session or asks for the next span.
class RatelessClientBackend final : public ClientBackend {
 public:
  RatelessClientBackend(const ItemSet& items, core::ProtocolConfig cfg);

  [[nodiscard]] Outcome absorb_wire(const WireMsg& msg) override;
  [[nodiscard]] WireMsg next_request() override;

 private:
  [[nodiscard]] Outcome fail();
  /// Most symbols the client will consume before declaring the stream
  /// hostile; ~3x the paper's worst-case need for the claimed set sizes.
  [[nodiscard]] std::uint64_t symbol_budget() const noexcept;

  const ItemSet* items_;
  core::ProtocolConfig cfg_;
  std::optional<iblt::RatelessDecoder> decoder_;
  std::uint64_t salt_ = 0;
  std::uint64_t host_count_ = 0;
  std::uint64_t set_checksum_ = 0;
  bool started_ = false;
  bool failed_ = false;
};

}  // namespace graphene::reconcile
