#include "reconcile/graphene_backend.hpp"

#include <algorithm>

#include "bloom/bloom_math.hpp"
#include "graphene/bounds.hpp"
#include "graphene/errors.hpp"
#include "iblt/param_cache.hpp"
#include "iblt/param_table.hpp"
#include "iblt/pingpong.hpp"
#include "reconcile/flight.hpp"
#include "util/thread_pool.hpp"
#include "util/varint.hpp"
#include "util/wire_limits.hpp"

namespace graphene::reconcile {

namespace {

using detail::record_decode;
using detail::record_msg;

std::uint64_t short_id_of(const ItemDigest& d, std::uint64_t salt,
                          const core::ProtocolConfig& cfg) noexcept {
  if (cfg.keyed_short_ids) {
    return util::siphash24(util::SipHashKey{salt, salt ^ 0x6a09e667f3bcc908ULL},
                           util::ByteView(d.data(), d.size()));
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(d[static_cast<std::size_t>(i)]) << (8 * i);
  return v;
}

util::ByteView view(const ItemDigest& d) noexcept {
  return util::ByteView(d.data(), d.size());
}

/// Snapshots an iteration of `items` (digest pointers stay valid — the
/// containers are node- or array-backed and unmodified during a pass) plus
/// the matching view array for the batch filter primitives.
struct DigestPass {
  std::vector<const ItemDigest*> digests;
  std::vector<util::ByteView> views;

  template <typename Container>
  explicit DigestPass(const Container& items) {
    digests.reserve(items.size());
    views.reserve(items.size());
    for (const ItemDigest& d : items) {
      digests.push_back(&d);
      views.push_back(view(d));
    }
  }

  /// hit[i] = 1 iff views[i] passes `filter`; chunk-parallel with a pool.
  [[nodiscard]] std::vector<std::uint8_t> scan(const bloom::BloomFilter& filter,
                                               util::ThreadPool* pool) const {
    std::vector<std::uint8_t> hit(views.size());
    bloom::contains_all(filter, views.data(), views.size(), hit.data(), pool);
    return hit;
  }
};

using detail::parse_payload;

}  // namespace

// --- wire formats -----------------------------------------------------------

void Offer::serialize_into(util::ByteWriter& w) const {
  util::write_varint(w, count);
  w.u64(salt);
  w.u64(set_checksum);
  filter.serialize_into(w);
  correction.serialize_into(w);
}

util::Bytes Offer::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

Offer Offer::deserialize(util::ByteReader& reader) {
  Offer o;
  o.count = util::read_varint_bounded(reader, util::wire::kMaxWireCollection,
                                      "reconcile::Offer count");
  o.salt = reader.u64();
  o.set_checksum = reader.u64();
  o.filter = bloom::BloomFilter::deserialize(reader);
  o.correction = iblt::Iblt::deserialize(reader);
  return o;
}

std::size_t Offer::serialized_size() const noexcept {
  return util::varint_size(count) + 16 + filter.serialized_size() +
         correction.serialized_size();
}

void Request::serialize_into(util::ByteWriter& w) const {
  util::write_varint(w, candidate_count);
  util::write_varint(w, b);
  util::write_varint(w, y_star);
  std::uint64_t bits = 0;
  std::memcpy(&bits, &fpr_r, sizeof(bits));
  w.u64(bits);
  w.u8(reversed ? 1 : 0);
  filter.serialize_into(w);
}

util::Bytes Request::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

Request Request::deserialize(util::ByteReader& reader) {
  Request r;
  r.candidate_count = util::read_varint_bounded(reader, util::wire::kMaxWireCollection,
                                                "reconcile::Request candidates");
  r.b = util::read_varint_bounded(reader, util::wire::kMaxSizingParam,
                                  "reconcile::Request b");
  r.y_star = util::read_varint_bounded(reader, util::wire::kMaxSizingParam,
                                       "reconcile::Request y_star");
  const std::uint64_t bits = reader.u64();
  std::memcpy(&r.fpr_r, &bits, sizeof(r.fpr_r));
  if (!(r.fpr_r > 0.0 && r.fpr_r <= 1.0)) {
    throw util::DeserializeError("reconcile::Request: fpr not in (0, 1]");
  }
  const std::uint8_t reversed_flag = reader.u8();
  if (reversed_flag > 1) {
    throw util::DeserializeError("reconcile::Request: invalid reversed flag");
  }
  r.reversed = reversed_flag == 1;
  r.filter = bloom::BloomFilter::deserialize(reader);
  return r;
}

void Response::serialize_into(util::ByteWriter& w) const {
  util::write_varint(w, missing.size());
  for (const ItemDigest& d : missing) w.raw(view(d));
  correction.serialize_into(w);
  w.u8(compensation.has_value() ? 1 : 0);
  if (compensation) compensation->serialize_into(w);
}

util::Bytes Response::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

Response Response::deserialize(util::ByteReader& reader) {
  Response r;
  const std::uint64_t count = util::read_varint_bounded(
      reader, util::wire::kMaxWireCollection, "reconcile::Response count");
  if (count > reader.remaining() / 32) {
    throw util::DeserializeError("reconcile::Response: item count exceeds buffer");
  }
  r.missing.resize(count);
  for (ItemDigest& d : r.missing) reader.raw_into(d.data(), d.size());
  r.correction = iblt::Iblt::deserialize(reader);
  const std::uint8_t compensation_flag = reader.u8();
  if (compensation_flag > 1) {
    throw util::DeserializeError("reconcile::Response: invalid presence flag");
  }
  if (compensation_flag == 1) r.compensation = bloom::BloomFilter::deserialize(reader);
  return r;
}

void FetchRequest::serialize_into(util::ByteWriter& w) const {
  util::write_varint(w, short_ids.size());
  for (const std::uint64_t s : short_ids) w.u64(s);
}

util::Bytes FetchRequest::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

FetchRequest FetchRequest::deserialize(util::ByteReader& reader) {
  FetchRequest r;
  const std::uint64_t count = util::read_varint_bounded(
      reader, util::wire::kMaxWireCollection, "reconcile::FetchRequest count");
  if (count > reader.remaining() / 8) {
    throw util::DeserializeError("reconcile::FetchRequest: count exceeds buffer");
  }
  r.short_ids.resize(count);
  for (auto& s : r.short_ids) s = reader.u64();
  return r;
}

void FetchResponse::serialize_into(util::ByteWriter& w) const {
  util::write_varint(w, items.size());
  for (const ItemDigest& d : items) w.raw(view(d));
}

util::Bytes FetchResponse::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

FetchResponse FetchResponse::deserialize(util::ByteReader& reader) {
  FetchResponse r;
  const std::uint64_t count = util::read_varint_bounded(
      reader, util::wire::kMaxWireCollection, "reconcile::FetchResponse count");
  if (count > reader.remaining() / 32) {
    throw util::DeserializeError("reconcile::FetchResponse: count exceeds buffer");
  }
  r.items.resize(count);
  for (ItemDigest& d : r.items) reader.raw_into(d.data(), d.size());
  return r;
}

// --- host -------------------------------------------------------------------

GrapheneHostBackend::GrapheneHostBackend(const ItemSet& items, std::uint64_t salt,
                                         core::ProtocolConfig cfg)
    : items_(&items), salt_(salt), cfg_(cfg) {}

Offer GrapheneHostBackend::make_offer(std::uint64_t client_count) const {
  const std::uint64_t n = items_->size();
  const core::Protocol1Params params =
      core::optimize_protocol1(n, std::max(client_count, n), cfg_);

  Offer offer;
  offer.count = n;
  offer.salt = salt_;
  offer.filter = bloom::BloomFilter(std::max<std::uint64_t>(n, 1), params.fpr,
                                    salt_ ^ 0x0ffe12, cfg_.bloom_strategy);
  offer.correction = iblt::Iblt(params.iblt, salt_);
  const DigestPass pass(*items_);
  offer.filter.insert_batch(pass.views.data(), pass.views.size());
  std::vector<std::uint64_t> sids;
  sids.reserve(n);
  for (const ItemDigest* d : pass.digests) {
    const std::uint64_t sid = short_id_of(*d, salt_, cfg_);
    sids.push_back(sid);
    offer.set_checksum ^= util::mix64(sid);
  }
  offer.correction.insert_all(sids, cfg_.pool);
  record_msg(obs::enabled(cfg_.obs), obs::FlightEventKind::kMsgSent, "offer", offer,
             {{"count", static_cast<double>(n)},
              {"bloom_bytes", static_cast<double>(offer.filter.serialized_size())},
              {"iblt_cells", static_cast<double>(offer.correction.cell_count())}});
  return offer;
}

Response GrapheneHostBackend::serve(const Request& request) const {
  // Revalidate the sizing parameters even though the deserializer caps each
  // field: serve() is also reachable with an in-memory request, and
  // b + y_star sizes the correction IBLT allocated below — two fields at
  // their individual caps would otherwise allocate a multi-hundred-MB table.
  if (request.b > util::wire::kMaxSizingParam ||
      request.y_star > util::wire::kMaxSizingParam ||
      request.b + request.y_star > util::wire::kMaxIbltCells ||
      request.candidate_count > util::wire::kMaxWireCollection ||
      !(request.fpr_r > 0.0 && request.fpr_r <= 1.0)) {
    core::ErrorContext ctx;
    ctx.n = items_->size();
    ctx.z = request.candidate_count;
    ctx.y_star = request.y_star;
    ctx.b = request.b;
    if (obs::FlightRecorder* fr = obs::flight(obs::enabled(cfg_.obs))) {
      obs::FlightEvent e;
      e.kind = obs::FlightEventKind::kError;
      e.label = "reconcile_serve";
      e.attrs = {{"n", static_cast<double>(ctx.n)},
                 {"z", static_cast<double>(ctx.z)},
                 {"y_star", static_cast<double>(ctx.y_star)},
                 {"b", static_cast<double>(ctx.b)}};
      fr->record(std::move(e));
    }
    throw core::ProtocolError("reconcile_serve",
                              "request sizing parameters out of range", ctx);
  }

  Response resp;
  const std::uint64_t n = items_->size();

  std::vector<const ItemDigest*> passed;
  passed.reserve(n);
  const DigestPass pass(*items_);
  {
    const std::vector<std::uint8_t> hit = pass.scan(request.filter, cfg_.pool);
    for (std::size_t i = 0; i < pass.digests.size(); ++i) {
      if (hit[i] != 0) {
        passed.push_back(pass.digests[i]);
      } else {
        resp.missing.push_back(*pass.digests[i]);
      }
    }
  }

  // Canonicalize: the scan above visits items in hash-table iteration order,
  // which is an artifact of the in-memory DigestHasher — left unsorted it
  // would leak onto the wire and change whenever the hasher does. Missing
  // items are a set; emit them in digest order so Response bytes are a pure
  // function of the sets (pinned by the golden-wire test).
  std::sort(resp.missing.begin(), resp.missing.end());

  std::uint64_t j_items = request.b + request.y_star;
  if (request.reversed) {
    const std::uint64_t z_s = passed.size();
    const std::uint64_t x_s = core::bound_x_star(z_s, n, request.candidate_count,
                                                 request.fpr_r, cfg_.beta);
    const std::uint64_t y_s = core::bound_y_star(n, x_s, request.fpr_r, cfg_.beta);
    const std::uint64_t denom = std::max<std::uint64_t>(
        1, request.candidate_count > x_s ? request.candidate_count - x_s : 1);

    std::uint64_t best_b = 1;
    std::size_t best_total = SIZE_MAX;
    for (std::uint64_t b = 1; b <= denom; b = (b < 128 ? b + 1 : b + b / 8)) {
      const double f_f = std::min(1.0, static_cast<double>(b) / static_cast<double>(denom));
      const std::size_t total = bloom::serialized_bytes(z_s, f_f) +
                                iblt::cached_iblt_bytes(cfg_.param_cache, b + y_s, cfg_.fail_denom);
      if (total < best_total) {
        best_total = total;
        best_b = b;
      }
    }
    const double f_f = std::min(1.0, static_cast<double>(best_b) / static_cast<double>(denom));
    bloom::BloomFilter comp(std::max<std::uint64_t>(z_s, 1), f_f, salt_ ^ 0xc0ffee,
                            cfg_.bloom_strategy);
    std::vector<util::ByteView> passed_views;
    passed_views.reserve(passed.size());
    for (const ItemDigest* d : passed) passed_views.push_back(view(*d));
    comp.insert_batch(passed_views.data(), passed_views.size());
    resp.compensation = std::move(comp);
    j_items = best_b + y_s;
  }

  resp.correction =
      iblt::Iblt(iblt::cached_params(cfg_.param_cache, j_items, cfg_.fail_denom), salt_ + 1);
  std::vector<std::uint64_t> sids;
  sids.reserve(pass.digests.size());
  for (const ItemDigest* d : pass.digests) sids.push_back(short_id_of(*d, salt_, cfg_));
  resp.correction.insert_all(sids, cfg_.pool);
  record_msg(obs::enabled(cfg_.obs), obs::FlightEventKind::kMsgSent, "response", resp,
             {{"missing", static_cast<double>(resp.missing.size())},
              {"j_cells", static_cast<double>(resp.correction.cell_count())},
              {"reversed", request.reversed ? 1.0 : 0.0}});
  return resp;
}

FetchResponse GrapheneHostBackend::serve_fetch(const FetchRequest& request) const {
  FetchResponse resp;
  std::unordered_map<std::uint64_t, const ItemDigest*> by_sid;
  by_sid.reserve(items_->size());
  for (const ItemDigest& d : *items_) by_sid.emplace(short_id_of(d, salt_, cfg_), &d);
  for (const std::uint64_t s : request.short_ids) {
    const auto it = by_sid.find(s);
    if (it != by_sid.end()) resp.items.push_back(*it->second);
  }
  record_msg(obs::enabled(cfg_.obs), obs::FlightEventKind::kMsgSent, "fetchresp", resp,
             {{"requested", static_cast<double>(request.short_ids.size())},
              {"served", static_cast<double>(resp.items.size())}});
  return resp;
}

WireMsg GrapheneHostBackend::open(std::uint64_t client_count) {
  return {net::MessageType::kReconcileOffer, make_offer(client_count).serialize()};
}

WireMsg GrapheneHostBackend::serve_wire(const WireMsg& request) {
  switch (request.type) {
    case net::MessageType::kReconcileRequest: {
      const Request req = parse_payload<Request>(request, "reconcile::Request");
      return {net::MessageType::kReconcileResponse, serve(req).serialize()};
    }
    case net::MessageType::kReconcileFetch: {
      const FetchRequest req =
          parse_payload<FetchRequest>(request, "reconcile::FetchRequest");
      return {net::MessageType::kReconcileFetchResponse, serve_fetch(req).serialize()};
    }
    default: break;
  }
  core::ErrorContext ctx;
  ctx.n = items_->size();
  throw core::ProtocolError("reconcile_serve",
                            "unexpected message type for graphene backend", ctx);
}

// --- client -----------------------------------------------------------------

GrapheneClientBackend::GrapheneClientBackend(const ItemSet& items,
                                             core::ProtocolConfig cfg)
    : items_(&items), cfg_(cfg) {}

std::uint64_t GrapheneClientBackend::sid(const ItemDigest& d) const noexcept {
  return short_id_of(d, offer_.salt, cfg_);
}

std::vector<std::uint64_t> GrapheneClientBackend::candidate_sids() const {
  std::vector<std::uint64_t> sids;
  sids.reserve(candidates_.size());
  for (const ItemDigest& d : candidates_) sids.push_back(sid(d));
  return sids;
}

void GrapheneClientBackend::index(const ItemDigest& d) {
  const std::uint64_t s = sid(d);
  const auto [it, inserted] = sid_to_digest_.emplace(s, d);
  if (!inserted && it->second != d) ambiguous_.insert(s);
  candidates_.insert(d);
}

Outcome GrapheneClientBackend::absorb(const Offer& offer) {
  obs::Registry* reg = obs::enabled(cfg_.obs);
  record_msg(reg, obs::FlightEventKind::kMsgReceived, "offer", offer,
             {{"count", static_cast<double>(offer.count)},
              {"bloom_bytes", static_cast<double>(offer.filter.serialized_size())},
              {"iblt_cells", static_cast<double>(offer.correction.cell_count())}});
  const auto finish = [reg](Outcome out) {
    record_decode(reg, "reconcile_p1", out.status);
    return out;
  };
  offer_ = offer;
  sid_to_digest_.clear();
  ambiguous_.clear();
  candidates_.clear();

  {
    const DigestPass pass(*items_);
    const std::vector<std::uint8_t> hit = pass.scan(offer.filter, cfg_.pool);
    for (std::size_t i = 0; i < pass.digests.size(); ++i) {
      if (hit[i] != 0) index(*pass.digests[i]);
    }
  }

  iblt::Iblt mine(iblt::IbltParams{offer.correction.hash_count(),
                                   offer.correction.cell_count()},
                  offer.correction.seed());
  mine.insert_all(candidate_sids(), cfg_.pool);

  const iblt::DecodeResult dec = offer.correction.subtract(mine, cfg_.pool).decode();
  Outcome out;
  if (dec.malformed || !dec.success || !dec.positives.empty()) {
    out.status = dec.malformed ? Outcome::Status::kFailed : Outcome::Status::kNeedsRequest;
    return finish(out);
  }
  for (const std::uint64_t s : dec.negatives) {
    const auto it = sid_to_digest_.find(s);
    if (it == sid_to_digest_.end() || ambiguous_.count(s) > 0) {
      out.status = Outcome::Status::kNeedsRequest;
      return finish(out);
    }
    candidates_.erase(it->second);
  }
  return finish(finalize());
}

Request GrapheneClientBackend::make_request() {
  const std::uint64_t z = candidates_.size();
  const double f_s = bloom::expected_fpr(offer_.filter.bit_count(),
                                         offer_.filter.hash_count(), offer_.count);
  params2_ = core::optimize_protocol2(z, items_->size(), offer_.count, f_s, cfg_);

  Request req;
  req.candidate_count = z;
  req.b = params2_.b;
  req.y_star = params2_.y_star;
  req.fpr_r = params2_.fpr;
  req.reversed = params2_.reversed;
  req.filter = bloom::BloomFilter(std::max<std::uint64_t>(z, 1), params2_.fpr,
                                  offer_.salt ^ 0x4ece55, cfg_.bloom_strategy);
  const DigestPass pass(candidates_);
  req.filter.insert_batch(pass.views.data(), pass.views.size());
  record_msg(obs::enabled(cfg_.obs), obs::FlightEventKind::kMsgSent, "request", req,
             {{"z", static_cast<double>(z)},
              {"b", static_cast<double>(req.b)},
              {"y_star", static_cast<double>(req.y_star)},
              {"fpr_r", req.fpr_r},
              {"reversed", req.reversed ? 1.0 : 0.0}});
  return req;
}

Outcome GrapheneClientBackend::complete(const Response& response) {
  obs::Registry* reg = obs::enabled(cfg_.obs);
  record_msg(reg, obs::FlightEventKind::kMsgReceived, "response", response,
             {{"missing", static_cast<double>(response.missing.size())},
              {"j_cells", static_cast<double>(response.correction.cell_count())},
              {"has_compensation", response.compensation.has_value() ? 1.0 : 0.0}});
  const auto finish = [reg](Outcome out) {
    record_decode(reg, "reconcile_p2", out.status);
    return out;
  };
  Outcome out;

  if (params2_.reversed && response.compensation.has_value()) {
    const DigestPass pass(candidates_);
    const std::vector<std::uint8_t> hit = pass.scan(*response.compensation, cfg_.pool);
    for (std::size_t i = 0; i < pass.digests.size(); ++i) {
      if (hit[i] == 0) candidates_.erase(*pass.digests[i]);
    }
  }
  for (const ItemDigest& d : response.missing) index(d);

  iblt::Iblt mine(iblt::IbltParams{response.correction.hash_count(),
                                   response.correction.cell_count()},
                  response.correction.seed());
  mine.insert_all(candidate_sids(), cfg_.pool);

  const iblt::Iblt diff_j = response.correction.subtract(mine, cfg_.pool);
  iblt::DecodeResult dec = diff_j.decode();
  if (!dec.success && !dec.malformed && cfg_.enable_pingpong) {
    // §4.2 ping-pong: the offer's IBLT covers the same item pair.
    iblt::Iblt offer_mine(iblt::IbltParams{offer_.correction.hash_count(),
                                           offer_.correction.cell_count()},
                          offer_.correction.seed());
    offer_mine.insert_all(candidate_sids(), cfg_.pool);
    const iblt::PingPongResult pp =
        iblt::pingpong_decode(diff_j, offer_.correction.subtract(offer_mine, cfg_.pool));
    if (pp.malformed) {
      out.status = Outcome::Status::kFailed;
      return finish(out);
    }
    dec.success = pp.success;
    dec.positives = pp.positives;
    dec.negatives = pp.negatives;
  }
  if (dec.malformed || !dec.success) {
    out.status = Outcome::Status::kFailed;
    return finish(out);
  }
  for (const std::uint64_t s : dec.negatives) {
    const auto it = sid_to_digest_.find(s);
    if (it == sid_to_digest_.end() || ambiguous_.count(s) > 0) {
      out.status = Outcome::Status::kFailed;
      return finish(out);
    }
    candidates_.erase(it->second);
  }
  std::vector<std::uint64_t> unresolved;
  for (const std::uint64_t s : dec.positives) {
    const auto it = sid_to_digest_.find(s);
    if (it != sid_to_digest_.end() && ambiguous_.count(s) == 0) {
      candidates_.insert(it->second);
    } else {
      unresolved.push_back(s);
    }
  }
  if (!unresolved.empty()) {
    pending_fetch_ = unresolved;
    out.status = Outcome::Status::kNeedsFetch;
    out.unresolved = std::move(unresolved);
    return finish(out);
  }
  return finish(finalize());
}

FetchRequest GrapheneClientBackend::make_fetch() const {
  FetchRequest req;
  req.short_ids = pending_fetch_;
  return req;
}

Outcome GrapheneClientBackend::complete_fetch(const FetchResponse& response) {
  for (const ItemDigest& d : response.items) index(d);
  pending_fetch_.clear();
  Outcome out = finalize();
  record_decode(obs::enabled(cfg_.obs), "reconcile_fetch", out.status);
  return out;
}

Outcome GrapheneClientBackend::finalize() {
  Outcome out;
  std::uint64_t checksum = 0;
  for (const ItemDigest& d : candidates_) checksum ^= util::mix64(sid(d));
  if (candidates_.size() == offer_.count && checksum == offer_.set_checksum) {
    out.status = Outcome::Status::kComplete;
    out.host_set = candidates_;
  } else {
    out.status = Outcome::Status::kNeedsRequest;
  }
  return out;
}

// --- wire-driven session ----------------------------------------------------

Outcome GrapheneClientBackend::absorb_wire(const WireMsg& msg) {
  Outcome out;
  switch (msg.type) {
    case net::MessageType::kReconcileOffer: {
      if (phase_ != Phase::kAwaitOffer) break;
      out = absorb(parse_payload<Offer>(msg, "reconcile::Offer"));
      phase_ = out.status == Outcome::Status::kNeedsRequest ? Phase::kAwaitResponse
                                                            : Phase::kDone;
      last_status_ = out.status;
      return out;
    }
    case net::MessageType::kReconcileResponse: {
      if (phase_ != Phase::kAwaitResponse || last_status_ != Outcome::Status::kNeedsRequest) break;
      out = complete(parse_payload<Response>(msg, "reconcile::Response"));
      // The typed API reports a post-repair checksum mismatch as
      // kNeedsRequest so single-round callers can see why finalize failed,
      // but the repair round is spent: for the driver that status is
      // terminal, not a license to loop.
      if (out.status == Outcome::Status::kNeedsRequest) out.status = Outcome::Status::kFailed;
      phase_ = out.status == Outcome::Status::kNeedsFetch ? Phase::kAwaitFetch
                                                          : Phase::kDone;
      last_status_ = out.status;
      return out;
    }
    case net::MessageType::kReconcileFetchResponse: {
      if (phase_ != Phase::kAwaitFetch || last_status_ != Outcome::Status::kNeedsFetch) break;
      out = complete_fetch(parse_payload<FetchResponse>(msg, "reconcile::FetchResponse"));
      if (out.status != Outcome::Status::kComplete) out.status = Outcome::Status::kFailed;
      phase_ = Phase::kDone;
      last_status_ = out.status;
      return out;
    }
    default: break;
  }
  out.status = Outcome::Status::kFailed;
  phase_ = Phase::kDone;
  last_status_ = out.status;
  return out;
}

WireMsg GrapheneClientBackend::next_request() {
  if (last_status_ == Outcome::Status::kNeedsRequest) {
    return {net::MessageType::kReconcileRequest, make_request().serialize()};
  }
  if (last_status_ == Outcome::Status::kNeedsFetch) {
    return {net::MessageType::kReconcileFetch, make_fetch().serialize()};
  }
  throw std::logic_error("reconcile: next_request() without a pending round");
}

}  // namespace graphene::reconcile
