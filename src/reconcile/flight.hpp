// Internal flight-recorder helpers shared by the reconcile backends,
// mirroring the src/graphene engines: message events carry the serialized
// wire bytes (when capture is on) so a failed reconciliation can be
// inspected the same way a failed block relay can.
#pragma once

#include <initializer_list>
#include <utility>

#include "obs/obs.hpp"
#include "reconcile/types.hpp"

namespace graphene::reconcile::detail {

template <typename Msg>
void record_msg(obs::Registry* reg, obs::FlightEventKind kind, const char* label,
                const Msg& msg,
                std::initializer_list<std::pair<const char*, double>> attrs) {
  obs::FlightRecorder* fr = obs::flight(reg);
  if (fr == nullptr) return;
  obs::FlightEvent e;
  e.kind = kind;
  e.label = label;
  if (fr->wire_capture()) e.wire = msg.serialize();
  e.attrs.reserve(attrs.size());
  for (const auto& [k, v] : attrs) e.attrs.emplace_back(k, v);
  fr->record(std::move(e));
}

inline void record_decode(obs::Registry* reg, const char* label,
                          Outcome::Status status) {
  obs::FlightRecorder* fr = obs::flight(reg);
  if (fr == nullptr) return;
  obs::FlightEvent e;
  e.kind = obs::FlightEventKind::kDecode;
  e.label = label;
  e.attrs = {{"status", static_cast<double>(static_cast<int>(status))}};
  fr->record(std::move(e));
}

}  // namespace graphene::reconcile::detail
