// GrapheneBackend: the paper's Bloom + IBLT construction behind the
// ReconcilerBackend seam.
//
// The typed messages and the host/client logic here are the pre-seam
// reconcile::Host/Client moved verbatim — the wire formats are pinned
// bit-for-bit by tests/reconcile/test_backend.cpp golden hashes. The only
// new code is the WireMsg dispatch layer (open/serve_wire/absorb_wire/
// next_request) that lets the generic driver run this backend.
//
//   Offer     — host's digest of its set (Bloom filter S + IBLT I)
//   Request   — client's repair request when the offer alone is not
//               decodable (Protocol 2 step 2 analogue)
//   Response  — host's missing items + correction IBLT J (+ F when m ≈ n)
//   Fetch     — short IDs decoded as host-only but hidden by R's false
//               positives, resolved to digests in one final round
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graphene/messages.hpp"
#include "graphene/params.hpp"
#include "reconcile/backend.hpp"
#include "reconcile/types.hpp"

namespace graphene::reconcile {

/// Host-side digest of a set, sized for a client holding ~`client_count`
/// items that include (most of) the host's set.
struct Offer {
  std::uint64_t count = 0;        ///< |host set|
  std::uint64_t salt = 0;         ///< keys the 8-byte short IDs
  std::uint64_t set_checksum = 0; ///< xor of mix64(short id) over the host set —
                                  ///< the client's final exactness check (the
                                  ///< blockchain protocol uses the Merkle root)
  bloom::BloomFilter filter;      ///< S over the full digests
  iblt::Iblt correction;          ///< I over the short IDs

  /// Appends the wire encoding to `w` (scatter form of serialize()).

  void serialize_into(util::ByteWriter& w) const;

  [[nodiscard]] util::Bytes serialize() const;
  static Offer deserialize(util::ByteReader& reader);
  [[nodiscard]] std::size_t serialized_size() const noexcept;
};

/// Client-side repair request (Protocol 2 step 2 analogue).
struct Request {
  std::uint64_t candidate_count = 0;  ///< z
  std::uint64_t b = 1;
  std::uint64_t y_star = 1;
  double fpr_r = 1.0;
  bool reversed = false;
  bloom::BloomFilter filter;  ///< R over the client's candidate digests

  /// Appends the wire encoding to `w` (scatter form of serialize()).

  void serialize_into(util::ByteWriter& w) const;

  [[nodiscard]] util::Bytes serialize() const;
  static Request deserialize(util::ByteReader& reader);
};

/// Host's answer: items the client certainly lacks plus IBLT J.
struct Response {
  std::vector<ItemDigest> missing;
  iblt::Iblt correction;
  std::optional<bloom::BloomFilter> compensation;  ///< F, reversed path only

  /// Appends the wire encoding to `w` (scatter form of serialize()).

  void serialize_into(util::ByteWriter& w) const;

  [[nodiscard]] util::Bytes serialize() const;
  static Response deserialize(util::ByteReader& reader);
};

/// Final round: short IDs the client decoded as host-only but cannot map to
/// a digest (they were hidden by R's false positives).
struct FetchRequest {
  std::vector<std::uint64_t> short_ids;
  /// Appends the wire encoding to `w` (scatter form of serialize()).
  void serialize_into(util::ByteWriter& w) const;
  [[nodiscard]] util::Bytes serialize() const;
  static FetchRequest deserialize(util::ByteReader& reader);
};

struct FetchResponse {
  std::vector<ItemDigest> items;
  /// Appends the wire encoding to `w` (scatter form of serialize()).
  void serialize_into(util::ByteWriter& w) const;
  [[nodiscard]] util::Bytes serialize() const;
  static FetchResponse deserialize(util::ByteReader& reader);
};

/// Graphene host backend. The item set is borrowed from the session driver
/// and fixed for the backend's lifetime. The typed methods (make_offer,
/// serve, serve_fetch) are const and usable directly — reconcile::Host
/// forwards to them for API compatibility.
class GrapheneHostBackend final : public HostBackend {
 public:
  GrapheneHostBackend(const ItemSet& items, std::uint64_t salt,
                      core::ProtocolConfig cfg);

  [[nodiscard]] Offer make_offer(std::uint64_t client_count) const;
  [[nodiscard]] Response serve(const Request& request) const;
  [[nodiscard]] FetchResponse serve_fetch(const FetchRequest& request) const;

  [[nodiscard]] WireMsg open(std::uint64_t client_count) override;
  [[nodiscard]] WireMsg serve_wire(const WireMsg& request) override;

 private:
  const ItemSet* items_;
  std::uint64_t salt_;
  core::ProtocolConfig cfg_;
};

/// Graphene client backend; drives the one-way reconciliation. After
/// `absorb(offer)` either the host set is known, or `make_request()` /
/// `complete(response)` runs the recovery round (+ fetch when short IDs
/// stay unresolved).
class GrapheneClientBackend final : public ClientBackend {
 public:
  GrapheneClientBackend(const ItemSet& items, core::ProtocolConfig cfg);

  Outcome absorb(const Offer& offer);
  [[nodiscard]] Request make_request();
  Outcome complete(const Response& response);
  [[nodiscard]] FetchRequest make_fetch() const;
  Outcome complete_fetch(const FetchResponse& response);

  [[nodiscard]] Outcome absorb_wire(const WireMsg& msg) override;
  [[nodiscard]] WireMsg next_request() override;

 private:
  /// Where the wire-driven session stands; used to map a repeat
  /// kNeedsRequest (which the typed API surfaces for single-round callers)
  /// to a terminal kFailed so the generic driver cannot loop.
  enum class Phase : std::uint8_t { kAwaitOffer, kAwaitResponse, kAwaitFetch, kDone };

  Outcome finalize();
  [[nodiscard]] std::uint64_t sid(const ItemDigest& d) const noexcept;
  void index(const ItemDigest& d);
  /// Short IDs of the current candidate set, in iteration order — the batch
  /// input for the IBLT mirror builds.
  [[nodiscard]] std::vector<std::uint64_t> candidate_sids() const;

  const ItemSet* items_;
  core::ProtocolConfig cfg_;
  Offer offer_{};
  core::Protocol2Params params2_{};
  std::unordered_map<std::uint64_t, ItemDigest> sid_to_digest_;
  std::unordered_set<std::uint64_t> ambiguous_;
  ItemSet candidates_;
  std::vector<std::uint64_t> pending_fetch_;
  Phase phase_ = Phase::kAwaitOffer;
  Outcome::Status last_status_ = Outcome::Status::kFailed;
};

}  // namespace graphene::reconcile
