// Shared vocabulary of the reconciliation backends.
//
// Items are opaque 32-byte digests (hash your records however you like);
// every backend reconciles ItemSets and reports an Outcome. Splitting these
// out of set_reconciler.hpp lets backend implementations (graphene_backend,
// rateless_backend) and the session drivers share one definition without a
// header cycle.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "util/bytes.hpp"
#include "util/hash.hpp"

namespace graphene::reconcile {

/// Items are identified by 32-byte digests (e.g. SHA-256 of the record).
using ItemDigest = std::array<std::uint8_t, 32>;

struct DigestHasher {
  std::size_t operator()(const ItemDigest& d) const noexcept {
    // Chain-mix all four 64-bit words of the digest. The previous version
    // folded only bytes 0–7, so digests agreeing in their first eight bytes
    // — exactly what an adversary can grind for — landed in one bucket and
    // degraded every ItemSet to a linked list. Word extraction reuses the
    // endian-stable §6.3 splitter; the mixing chain stays off the wire, so
    // this is a pure in-memory change.
    const std::array<std::uint64_t, 4> words =
        util::split_digest_words(util::ByteView(d.data(), d.size()));
    std::uint64_t h = 0x243f6a8885a308d3ULL;
    for (const std::uint64_t w : words) h = util::mix64(h ^ w);
    return static_cast<std::size_t>(h);
  }
};

using ItemSet = std::unordered_set<ItemDigest, DigestHasher>;

/// Result of a client-side reconciliation step.
struct Outcome {
  /// kNeedsMoreSymbols is appended so the numeric values of the original
  /// states — recorded in flight events and forensic captures — are stable.
  enum class Status {
    kComplete,          ///< host set known and certified
    kNeedsRequest,      ///< Graphene: offer alone not decodable, run repair
    kNeedsFetch,        ///< Graphene: short IDs decoded but digests unknown
    kFailed,            ///< terminal failure (malformed input or budget hit)
    kNeedsMoreSymbols,  ///< rateless: stream not yet decodable, keep reading
  };
  Status status = Status::kFailed;
  /// The host's set as learned by the client (valid when kComplete). Items
  /// the client already held are included.
  ItemSet host_set;
  /// Short IDs decoded as host-only but with no digest known — the caller
  /// must fetch these out of band (or fail). Empty in normal operation.
  std::vector<std::uint64_t> unresolved;
  /// Coded symbols consumed so far (rateless backend only; 0 for Graphene).
  std::uint64_t symbols_consumed = 0;
};

/// True for every non-terminal status — the driver loop keeps exchanging
/// messages while this holds.
[[nodiscard]] constexpr bool needs_more(Outcome::Status s) noexcept {
  return s == Outcome::Status::kNeedsRequest || s == Outcome::Status::kNeedsFetch ||
         s == Outcome::Status::kNeedsMoreSymbols;
}

/// Hashes an arbitrary byte string into an ItemDigest (SHA-256).
[[nodiscard]] ItemDigest digest_of(util::ByteView data) noexcept;

}  // namespace graphene::reconcile
