#include "reconcile/set_reconciler.hpp"

#include <stdexcept>
#include <utility>

#include "util/sha256.hpp"

namespace graphene::reconcile {

ItemDigest digest_of(util::ByteView data) noexcept { return util::sha256(data); }

// --- host driver ------------------------------------------------------------

Host::Host(ItemSet items, std::uint64_t salt, core::ProtocolConfig cfg)
    : items_(std::move(items)), backend_(make_host_backend(items_, salt, cfg)) {
  graphene_ = dynamic_cast<GrapheneHostBackend*>(backend_.get());
}

const GrapheneHostBackend& Host::graphene() const {
  if (graphene_ == nullptr) {
    throw std::logic_error(
        "reconcile::Host: typed Graphene API requires ReconcileBackend::kGraphene");
  }
  return *graphene_;
}

WireMsg Host::open(std::uint64_t client_count) { return backend_->open(client_count); }

WireMsg Host::serve_wire(const WireMsg& request) { return backend_->serve_wire(request); }

Offer Host::make_offer(std::uint64_t client_count) const {
  return graphene().make_offer(client_count);
}

Response Host::serve(const Request& request) const { return graphene().serve(request); }

FetchResponse Host::serve_fetch(const FetchRequest& request) const {
  return graphene().serve_fetch(request);
}

// --- client driver ----------------------------------------------------------

Client::Client(const ItemSet& items, core::ProtocolConfig cfg)
    : items_(&items), cfg_(cfg), backend_(make_client_backend(items, cfg)) {
  graphene_ = dynamic_cast<GrapheneClientBackend*>(backend_.get());
}

GrapheneClientBackend& Client::graphene() const {
  if (graphene_ == nullptr) {
    throw std::logic_error(
        "reconcile::Client: typed Graphene API requires ReconcileBackend::kGraphene");
  }
  return *graphene_;
}

Outcome Client::absorb_wire(const WireMsg& msg) { return backend_->absorb_wire(msg); }

WireMsg Client::next_request() { return backend_->next_request(); }

Outcome Client::absorb(const Offer& offer) { return graphene().absorb(offer); }

Request Client::make_request() { return graphene().make_request(); }

Outcome Client::complete(const Response& response) {
  return graphene().complete(response);
}

FetchRequest Client::make_fetch() const { return graphene().make_fetch(); }

Outcome Client::complete_fetch(const FetchResponse& response) {
  return graphene().complete_fetch(response);
}

// --- drivers ----------------------------------------------------------------

SyncStats reconcile_one_way(Host& host, Client& client, Outcome& outcome) {
  SyncStats stats;
  const WireMsg opening = host.open(client.local_count());
  stats.round_bytes.push_back(opening.payload.size());
  stats.round_trips = 1;
  outcome = client.absorb_wire(opening);

  const std::uint32_t cap = client.config().reconcile_round_cap;
  std::uint32_t rounds = 0;
  while (needs_more(outcome.status) && rounds < cap) {
    ++rounds;
    const WireMsg request = client.next_request();
    if (request.type == net::MessageType::kReconcileRequest) {
      stats.used_request_round = true;
    } else if (request.type == net::MessageType::kReconcileFetch) {
      stats.used_fetch_round = true;
    }
    stats.round_bytes.push_back(request.payload.size());
    const WireMsg response = host.serve_wire(request);
    stats.round_bytes.push_back(response.payload.size());
    ++stats.round_trips;
    outcome = client.absorb_wire(response);
  }
  // The cap is the driver's own guarantee: a backend still hungry after
  // `cap` rounds is cut off as failed rather than trusted to converge.
  if (needs_more(outcome.status)) outcome.status = Outcome::Status::kFailed;
  stats.symbols_consumed = outcome.symbols_consumed;
  stats.success = outcome.status == Outcome::Status::kComplete;
  return stats;
}

SyncStats reconcile_one_way(const Host& host, Client& client, const Offer& offer,
                            Outcome& outcome) {
  SyncStats stats;
  stats.round_bytes.push_back(offer.serialize().size());
  stats.round_trips = 1;
  outcome = client.absorb(offer);
  if (outcome.status == Outcome::Status::kNeedsRequest) {
    stats.used_request_round = true;
    const Request req = client.make_request();
    stats.round_bytes.push_back(req.serialize().size());
    const Response resp = host.serve(req);
    stats.round_bytes.push_back(resp.serialize().size());
    ++stats.round_trips;
    outcome = client.complete(resp);
  }
  if (outcome.status == Outcome::Status::kNeedsFetch) {
    stats.used_fetch_round = true;
    const FetchRequest freq = client.make_fetch();
    stats.round_bytes.push_back(freq.serialize().size());
    const FetchResponse fresp = host.serve_fetch(freq);
    stats.round_bytes.push_back(fresp.serialize().size());
    ++stats.round_trips;
    outcome = client.complete_fetch(fresp);
  }
  stats.success = outcome.status == Outcome::Status::kComplete;
  return stats;
}

}  // namespace graphene::reconcile
