#include "reconcile/backend.hpp"

#include "reconcile/graphene_backend.hpp"
#include "reconcile/rateless_backend.hpp"

namespace graphene::reconcile {

std::unique_ptr<HostBackend> make_host_backend(const ItemSet& items,
                                               std::uint64_t salt,
                                               const core::ProtocolConfig& cfg) {
  switch (cfg.reconcile_backend) {
    case core::ReconcileBackend::kRatelessIblt:
      return std::make_unique<RatelessHostBackend>(items, salt, cfg);
    case core::ReconcileBackend::kGraphene: break;
  }
  return std::make_unique<GrapheneHostBackend>(items, salt, cfg);
}

std::unique_ptr<ClientBackend> make_client_backend(const ItemSet& items,
                                                   const core::ProtocolConfig& cfg) {
  switch (cfg.reconcile_backend) {
    case core::ReconcileBackend::kRatelessIblt:
      return std::make_unique<RatelessClientBackend>(items, cfg);
    case core::ReconcileBackend::kGraphene: break;
  }
  return std::make_unique<GrapheneClientBackend>(items, cfg);
}

}  // namespace graphene::reconcile
