// The reconciliation backend seam.
//
// reconcile::Host and reconcile::Client are thin session drivers; the actual
// set-reconciliation construction lives behind these interfaces and is chosen
// via core::ProtocolConfig::reconcile_backend. Two backends ship today:
//
//   GrapheneBackend      — the paper's Bloom + IBLT offer with Protocol 2
//                          repair and short-ID fetch rounds (graphene_backend.hpp);
//                          wire bytes are bit-identical to the pre-seam code.
//   RatelessIbltBackend  — a coded-symbol stream (arXiv 2402.02668) where
//                          decode failure is not a failure mode: the client
//                          just asks for more symbols (rateless_backend.hpp).
//
// A backend speaks WireMsgs — (net::MessageType, payload bytes) pairs — so
// the driver loop, channels, and fault injection treat every backend the
// same way: the client absorbs a message, and either finishes or emits the
// next request for the host to serve.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "graphene/params.hpp"
#include "net/message.hpp"
#include "reconcile/types.hpp"

namespace graphene::reconcile {

/// One protocol message as the backends emit and consume it. Wrap in a
/// net::Message (same fields) to push it through a real channel.
struct WireMsg {
  net::MessageType type = net::MessageType::kReconcileOffer;
  util::Bytes payload;

  [[nodiscard]] net::Message to_message() const { return {type, payload}; }
};

/// Host (sender) side of a backend: produces the opening digest of its set
/// and answers every follow-up the client sends. Methods are non-const
/// because streaming backends accumulate state (e.g. produced symbols);
/// serving malformed or out-of-protocol requests throws (core::ProtocolError
/// or util::DeserializeError) rather than answering garbage.
class HostBackend {
 public:
  virtual ~HostBackend() = default;
  HostBackend() = default;
  HostBackend(const HostBackend&) = delete;
  HostBackend& operator=(const HostBackend&) = delete;
  HostBackend(HostBackend&&) = delete;
  HostBackend& operator=(HostBackend&&) = delete;

  /// First message of a session, for a client reporting `client_count` items.
  [[nodiscard]] virtual WireMsg open(std::uint64_t client_count) = 0;

  /// Answers one client request.
  [[nodiscard]] virtual WireMsg serve_wire(const WireMsg& request) = 0;
};

/// Client (receiver) side of a backend. absorb_wire() consumes one host
/// message and reports where the session stands; while the outcome status
/// satisfies needs_more(), next_request() yields the message to send back.
class ClientBackend {
 public:
  virtual ~ClientBackend() = default;
  ClientBackend() = default;
  ClientBackend(const ClientBackend&) = delete;
  ClientBackend& operator=(const ClientBackend&) = delete;
  ClientBackend(ClientBackend&&) = delete;
  ClientBackend& operator=(ClientBackend&&) = delete;

  [[nodiscard]] virtual Outcome absorb_wire(const WireMsg& msg) = 0;

  /// Only valid after absorb_wire() returned a needs_more() status.
  [[nodiscard]] virtual WireMsg next_request() = 0;
};

namespace detail {

/// Deserializes a whole WireMsg payload, rejecting trailing bytes (a typed
/// message is the entire payload, so leftovers mean a framing bug or a
/// smuggled appendix).
template <typename Msg>
Msg parse_payload(const WireMsg& msg, const char* what) {
  util::ByteReader reader(util::ByteView(msg.payload));
  Msg parsed = Msg::deserialize(reader);
  if (!reader.done()) {
    throw util::DeserializeError(std::string(what) + ": trailing bytes in payload");
  }
  return parsed;
}

}  // namespace detail

/// Backend factories keyed by cfg.reconcile_backend. `items` is borrowed and
/// must outlive the backend (the session drivers own it).
[[nodiscard]] std::unique_ptr<HostBackend> make_host_backend(
    const ItemSet& items, std::uint64_t salt, const core::ProtocolConfig& cfg);
[[nodiscard]] std::unique_ptr<ClientBackend> make_client_backend(
    const ItemSet& items, const core::ProtocolConfig& cfg);

}  // namespace graphene::reconcile
