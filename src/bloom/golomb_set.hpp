// Golomb-coded set (GCS) — the second Bloom filter alternative §3.3.2 cites
// (Golomb 1966; deployed in BIP-158 compact block filters).
//
// Items hash uniformly into [0, N·P) with P = 1/fpr; the sorted values are
// delta-encoded with Golomb-Rice codes of parameter ~log2(P). A GCS reaches
// ~log2(1/f) + 1.5 bits/item — closer to the Carter bound than a Bloom
// filter's 1.44·log2(1/f) — at the cost of O(n) membership queries (the
// whole structure must be decoded), which is why Graphene's hot path keeps a
// Bloom filter. bench_filter_alternatives quantifies the trade.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace graphene::bloom {

class GolombSet {
 public:
  /// Builds from item digests at the given FPR. The set is immutable.
  GolombSet(const std::vector<util::Bytes>& digests, double fpr, std::uint64_t seed = 0);

  /// Convenience for 32-byte array digests.
  static GolombSet from_views(const std::vector<util::ByteView>& digests, double fpr,
                              std::uint64_t seed = 0);

  /// Membership test; decodes the whole structure (O(n)).
  [[nodiscard]] bool contains(util::ByteView digest) const;

  [[nodiscard]] std::uint64_t item_count() const noexcept { return n_; }
  [[nodiscard]] double fpr() const noexcept { return fpr_; }

  /// Wire format: varint(n) | u8(rice parameter) | u64(seed) | varint(bit
  /// count) | coded payload.
  /// Appends the wire encoding to `w` (scatter form of serialize()).
  void serialize_into(util::ByteWriter& w) const;
  [[nodiscard]] util::Bytes serialize() const;
  [[nodiscard]] std::size_t serialized_size() const noexcept;
  static GolombSet deserialize(util::ByteReader& reader);

 private:
  GolombSet() = default;
  void build(std::vector<std::uint64_t> values);
  [[nodiscard]] std::uint64_t map_to_range(util::ByteView digest) const noexcept;
  [[nodiscard]] std::vector<std::uint64_t> decode_all() const;

  std::uint64_t n_ = 0;
  double fpr_ = 1.0;
  std::uint32_t rice_param_ = 0;
  std::uint64_t seed_ = 0;
  std::uint64_t bit_count_ = 0;
  util::Bytes coded_;
};

/// Predicted serialized size for n items at FPR f.
[[nodiscard]] std::size_t gcs_serialized_bytes(std::uint64_t n, double fpr) noexcept;

}  // namespace graphene::bloom
