// Closed-form Bloom filter sizing used by the Graphene parameter optimizers.
//
// The paper works with the continuous approximation
//     T_BF(n, f) = -n ln(f) / (8 ln² 2) bytes
// but notes (§3.3.1) that real implementations involve ceiling functions, so
// both the continuous and the discretized sizes are exposed here. Graphene's
// a-search uses the discretized forms for a < 100 (the "strictly optimal"
// path) and the continuous form to seed the search elsewhere.
#pragma once

#include <cstddef>
#include <cstdint>

namespace graphene::bloom {

/// Continuous-size model in bytes: -n ln(f) / (8 ln² 2). Returns 0 for
/// f >= 1 (a degenerate filter that matches everything costs nothing).
[[nodiscard]] double ideal_bytes(double n, double fpr) noexcept;

/// Number of bits a discrete filter allocates for n items at target FPR f:
/// ceil(-n ln f / ln² 2), minimum 1 (0 when f >= 1).
[[nodiscard]] std::uint64_t optimal_bits(std::uint64_t n, double fpr) noexcept;

/// Optimal hash-function count for a filter of `bits` bits holding n items:
/// round(bits/n · ln 2), clamped to [1, 64].
[[nodiscard]] std::uint32_t optimal_hash_count(std::uint64_t bits, std::uint64_t n) noexcept;

/// Expected FPR of a filter with `bits` bits, `k` hashes, n insertions:
/// (1 - e^{-kn/bits})^k.
[[nodiscard]] double expected_fpr(std::uint64_t bits, std::uint32_t k, std::uint64_t n) noexcept;

/// Serialized size in bytes of a discrete filter for n items at FPR f,
/// including the wire header (varint bit count + hash count + seed).
[[nodiscard]] std::size_t serialized_bytes(std::uint64_t n, double fpr) noexcept;

}  // namespace graphene::bloom
