// Cuckoo filter (Fan et al., CoNEXT 2014) — §3.3.2 lists it as a drop-in
// alternative to the Bloom filter in Graphene ("Any alternative can be used
// if Eqs. 2, 3, 4, and 5 are updated appropriately").
//
// Partial-key cuckoo hashing: buckets of 4 fingerprints; an item may live in
// bucket i1 = h(x) or i2 = i1 ^ h(fp). Lookup probes both buckets. The
// fingerprint width sets the FPR: f ≈ 2b/2^w for bucket size b, so
// w = ceil(log2(2b/f)) bits per item plus load-factor slack (~1/0.95).
//
// bench_cuckoo_ablation compares Graphene's S implemented as Bloom vs Cuckoo
// across FPR regimes: Bloom wins at the high FPRs Protocol 1 favors (cost
// 1.44·log2(1/f) vs w/0.95 with w ≥ ~4), Cuckoo wins at low FPR — matching
// the literature.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"
#include "util/hash.hpp"

namespace graphene::bloom {

class CuckooFilter {
 public:
  static constexpr std::uint32_t kBucketSize = 4;
  static constexpr std::uint32_t kMaxKicks = 500;

  /// Sizes the table for `expected_items` at `target_fpr`. target_fpr >= 1
  /// degenerates to a match-everything filter, mirroring BloomFilter.
  CuckooFilter(std::uint64_t expected_items, double target_fpr, std::uint64_t seed = 0);

  /// Inserts a 32-byte digest; returns false when the table is full (the
  /// victim is retained in a stash so no false negatives arise).
  bool insert(util::ByteView digest);

  [[nodiscard]] bool contains(util::ByteView digest) const;

  /// Cuckoo filters support deletion (Bloom filters do not).
  bool erase(util::ByteView digest);

  [[nodiscard]] bool matches_everything() const noexcept { return buckets_ == 0; }
  [[nodiscard]] std::uint64_t bucket_count() const noexcept { return buckets_; }
  [[nodiscard]] std::uint32_t fingerprint_bits() const noexcept { return fp_bits_; }
  [[nodiscard]] std::uint64_t insert_count() const noexcept { return inserted_; }

  /// Wire format: varint(buckets) | u8(fp_bits) | u64(seed) | varint(stash
  /// size) | stash | packed fingerprint table.
  /// Appends the wire encoding to `w` (scatter form of serialize()).
  void serialize_into(util::ByteWriter& w) const;
  [[nodiscard]] util::Bytes serialize() const;
  [[nodiscard]] std::size_t serialized_size() const noexcept;
  static CuckooFilter deserialize(util::ByteReader& reader);

 private:
  struct Slots {
    std::uint16_t fp[kBucketSize] = {0, 0, 0, 0};  // 0 = empty
  };

  [[nodiscard]] std::uint16_t fingerprint(std::uint64_t h) const noexcept;
  [[nodiscard]] std::uint64_t index1(std::uint64_t h) const noexcept;
  [[nodiscard]] std::uint64_t alt_index(std::uint64_t i, std::uint16_t fp) const noexcept;
  bool bucket_insert(std::uint64_t i, std::uint16_t fp);
  [[nodiscard]] bool bucket_contains(std::uint64_t i, std::uint16_t fp) const noexcept;
  bool bucket_erase(std::uint64_t i, std::uint16_t fp);

  std::vector<Slots> table_;
  std::vector<std::uint16_t> stash_;
  std::uint64_t buckets_ = 0;
  std::uint32_t fp_bits_ = 12;
  std::uint64_t seed_ = 0;
  std::uint64_t inserted_ = 0;
};

/// Serialized size estimate for n items at FPR f (the Eq. 2 analogue).
[[nodiscard]] std::size_t cuckoo_serialized_bytes(std::uint64_t n, double fpr) noexcept;

}  // namespace graphene::bloom
