#include "bloom/golomb_set.hpp"

#include <algorithm>
#include <cmath>

#include "util/hash.hpp"
#include "util/varint.hpp"
#include "util/wire_limits.hpp"

namespace graphene::bloom {

namespace {

class BitWriter {
 public:
  void bit(bool b) {
    if (offset_ == 0) buf_.push_back(0);
    if (b) buf_.back() |= static_cast<std::uint8_t>(1U << offset_);
    offset_ = (offset_ + 1) % 8;
    ++count_;
  }
  void bits(std::uint64_t value, std::uint32_t width) {
    for (std::uint32_t i = 0; i < width; ++i) bit((value >> i) & 1);
  }
  void unary(std::uint64_t q) {
    for (std::uint64_t i = 0; i < q; ++i) bit(true);
    bit(false);
  }
  [[nodiscard]] util::Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::uint64_t bit_count() const noexcept { return count_; }

 private:
  util::Bytes buf_;
  std::uint32_t offset_ = 0;
  std::uint64_t count_ = 0;
};

class BitReader {
 public:
  BitReader(util::ByteView data, std::uint64_t bit_count)
      : data_(data), bit_count_(bit_count) {}

  bool bit() {
    if (pos_ >= bit_count_) {
      throw util::DeserializeError("GolombSet: bit stream exhausted");
    }
    const bool b = (data_[pos_ / 8] >> (pos_ % 8)) & 1;
    ++pos_;
    return b;
  }
  std::uint64_t bits(std::uint32_t width) {
    std::uint64_t v = 0;
    for (std::uint32_t i = 0; i < width; ++i) {
      v |= static_cast<std::uint64_t>(bit()) << i;
    }
    return v;
  }
  std::uint64_t unary() {
    std::uint64_t q = 0;
    while (bit()) ++q;
    return q;
  }

 private:
  util::ByteView data_;
  std::uint64_t bit_count_;
  std::uint64_t pos_ = 0;
};

std::uint32_t rice_param_for(double fpr) noexcept {
  fpr = std::clamp(fpr, 1e-9, 0.5);
  return static_cast<std::uint32_t>(
      std::clamp(std::round(std::log2(1.0 / fpr)), 1.0, 40.0));
}

}  // namespace

GolombSet::GolombSet(const std::vector<util::Bytes>& digests, double fpr,
                     std::uint64_t seed) {
  n_ = digests.size();
  fpr_ = fpr;
  rice_param_ = rice_param_for(fpr);
  seed_ = seed;
  std::vector<std::uint64_t> values;
  values.reserve(n_);
  for (const util::Bytes& d : digests) values.push_back(map_to_range(util::ByteView(d)));
  build(std::move(values));
}

GolombSet GolombSet::from_views(const std::vector<util::ByteView>& digests, double fpr,
                                std::uint64_t seed) {
  GolombSet g;
  g.n_ = digests.size();
  g.fpr_ = fpr;
  g.rice_param_ = rice_param_for(fpr);
  g.seed_ = seed;
  std::vector<std::uint64_t> values;
  values.reserve(g.n_);
  for (const util::ByteView d : digests) values.push_back(g.map_to_range(d));
  g.build(std::move(values));
  return g;
}

std::uint64_t GolombSet::map_to_range(util::ByteView digest) const noexcept {
  // Map uniformly into [0, n · 2^rice) via the multiply-shift trick.
  const std::uint64_t h = util::hash64(digest, seed_);
  const std::uint64_t range = n_ << rice_param_;
  if (range == 0) return 0;
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(h) * range) >> 64);
}

void GolombSet::build(std::vector<std::uint64_t> values) {
  std::sort(values.begin(), values.end());
  BitWriter w;
  std::uint64_t prev = 0;
  for (const std::uint64_t v : values) {
    const std::uint64_t delta = v - prev;  // duplicates encode delta 0; fine
    prev = v;
    w.unary(delta >> rice_param_);
    w.bits(delta, rice_param_);
  }
  bit_count_ = w.bit_count();
  coded_ = w.take();
}

std::vector<std::uint64_t> GolombSet::decode_all() const {
  std::vector<std::uint64_t> out;
  out.reserve(n_);
  BitReader r(util::ByteView(coded_), bit_count_);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < n_; ++i) {
    const std::uint64_t q = r.unary();
    const std::uint64_t rem = r.bits(rice_param_);
    prev += (q << rice_param_) | rem;
    out.push_back(prev);
  }
  return out;
}

bool GolombSet::contains(util::ByteView digest) const {
  if (n_ == 0) return false;
  const std::uint64_t target = map_to_range(digest);
  BitReader r(util::ByteView(coded_), bit_count_);
  std::uint64_t value = 0;
  for (std::uint64_t i = 0; i < n_; ++i) {
    const std::uint64_t q = r.unary();
    const std::uint64_t rem = r.bits(rice_param_);
    value += (q << rice_param_) | rem;
    if (value == target) return true;
    if (value > target) return false;
  }
  return false;
}

void GolombSet::serialize_into(util::ByteWriter& w) const {
  util::write_varint(w, n_);
  w.u8(static_cast<std::uint8_t>(rice_param_));
  w.u64(seed_);
  util::write_varint(w, bit_count_);
  w.raw(util::ByteView(coded_));
}

util::Bytes GolombSet::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

std::size_t GolombSet::serialized_size() const noexcept {
  return util::varint_size(n_) + 1 + 8 + util::varint_size(bit_count_) + coded_.size();
}

GolombSet GolombSet::deserialize(util::ByteReader& reader) {
  GolombSet g;
  g.n_ = util::read_varint_bounded(reader, util::wire::kMaxGolombItems, "GolombSet items");
  g.rice_param_ = reader.u8();
  if (g.rice_param_ < 1 || g.rice_param_ > 40) {
    throw util::DeserializeError("GolombSet: invalid rice parameter");
  }
  g.seed_ = reader.u64();
  g.bit_count_ = util::read_varint_bounded(reader, util::wire::kMaxGolombBits, "GolombSet bits");
  // Each coded item consumes at least rice_param_ + 1 bits (its remainder
  // plus the unary terminator), so an item count the stream cannot back is
  // rejected before decode_all() reserves storage for it.
  if (g.n_ > g.bit_count_ / (g.rice_param_ + 1u)) {
    throw util::DeserializeError("GolombSet: item count exceeds coded stream");
  }
  const std::size_t payload = static_cast<std::size_t>((g.bit_count_ + 7) / 8);
  if (payload > reader.remaining()) {
    throw util::DeserializeError("GolombSet: bit count exceeds buffer");
  }
  g.coded_ = reader.raw(payload);
  g.fpr_ = std::pow(2.0, -static_cast<double>(g.rice_param_));
  // Validate the stream fully decodes (hostile input must not crash later).
  (void)g.decode_all();
  return g;
}

std::size_t gcs_serialized_bytes(std::uint64_t n, double fpr) noexcept {
  if (n == 0) return 11;
  const std::uint32_t p = rice_param_for(fpr);
  // Golomb-Rice expected cost: ~(p + 1.5) bits per delta.
  const auto bits = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(n) * (static_cast<double>(p) + 1.5)));
  return util::varint_size(n) + 1 + 8 + util::varint_size(bits) +
         static_cast<std::size_t>((bits + 7) / 8);
}

}  // namespace graphene::bloom
