// Bloom filter over 32-byte transaction IDs.
//
// Index derivation follows §6.3: a txid is already a cryptographic digest, so
// the filter slices it into 64-bit words and derives all k probe positions by
// double hashing over those words — no additional cryptographic hashing per
// probe. A `RehashStrategy` (k independent SipHash evaluations) is kept for
// the ablation benchmark that reproduces the §6.3 processing-time claim.
//
// A third, cache-line-blocked layout (`kBlocked`) targets the receiver's
// m-sized mempool pass: one hash selects a 64-byte block and all k probes
// land inside it, so a membership test touches a single cache line instead
// of up to k. Combined with the batch APIs below (software prefetching over
// a lookahead window) this is what bench_hotpath measures; the FPR penalty
// of blocking is a small constant factor, quantified in docs/PERFORMANCE.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "bloom/bloom_math.hpp"
#include "util/bytes.hpp"
#include "util/hash.hpp"
#include "util/siphash.hpp"

namespace graphene::util {
class ThreadPool;
}  // namespace graphene::util

namespace graphene::bloom {

enum class HashStrategy : std::uint8_t {
  kSplitDigest = 0,  ///< §6.3 optimization: slice the digest (default).
  kRehash = 1,       ///< k independent SipHash calls (ablation baseline).
  kBlocked = 2,      ///< all k probes in one 64-byte block (cache-optimal).
};

class BloomFilter {
 public:
  /// Bits per block of the kBlocked layout: one 64-byte cache line.
  static constexpr std::uint64_t kBlockBits = 512;

  /// Degenerate match-everything filter (FPR 1). Serializes to a header only;
  /// the paper treats this as "not sending a filter at all".
  BloomFilter() = default;

  /// Builds an empty filter sized for `expected_items` at `target_fpr`.
  /// target_fpr >= 1 yields the degenerate match-everything filter. The
  /// kBlocked strategy rounds the bit count up to a whole number of blocks
  /// and caps k at 63 (its wire encoding carries k in six bits).
  BloomFilter(std::uint64_t expected_items, double target_fpr,
              std::uint64_t seed = 0, HashStrategy strategy = HashStrategy::kSplitDigest);

  // Stats counters are atomic, so the compiler-generated copy/move are
  // deleted; these preserve counter values with relaxed loads. Copying
  // concurrently with queries is not synchronized (don't do that), but each
  // counter transfers atomically.
  BloomFilter(const BloomFilter& other);
  BloomFilter& operator=(const BloomFilter& other);
  BloomFilter(BloomFilter&& other) noexcept;
  BloomFilter& operator=(BloomFilter&& other) noexcept;

  /// Inserts a 32-byte txid (any 1..32-byte view accepted; shorter views are
  /// zero-extended by the word splitter). Not thread-safe against other
  /// writers or readers; build the filter first, then query it freely.
  void insert(util::ByteView txid);

  /// Inserts `count` items; equivalent to calling insert() on each in order
  /// but amortizes the stats update and, for the blocked layout, prefetches
  /// target blocks a window ahead.
  void insert_batch(const util::ByteView* items, std::size_t count);

  /// Membership test; false positives occur at ~the configured FPR, false
  /// negatives never. Safe to call concurrently with other contains() calls
  /// (stats counters are relaxed atomics; the bit array is read-only here).
  [[nodiscard]] bool contains(util::ByteView txid) const;

  /// Batch membership: out[i] = 1 if items[i] matches, else 0. Bit-identical
  /// to calling contains() per item; one relaxed stats update for the whole
  /// batch. The blocked layout runs a prefetch pipeline over the batch —
  /// this is the receiver's mempool-scan primitive.
  void contains_batch(const util::ByteView* items, std::size_t count,
                      std::uint8_t* out) const;

  /// True when the filter matches every query (zero-bit filter).
  [[nodiscard]] bool matches_everything() const noexcept { return n_bits_ == 0; }

  [[nodiscard]] std::uint64_t bit_count() const noexcept { return n_bits_; }
  [[nodiscard]] std::uint32_t hash_count() const noexcept { return k_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] HashStrategy strategy() const noexcept { return strategy_; }
  [[nodiscard]] std::uint64_t insert_count() const noexcept {
    return inserted_.load(std::memory_order_relaxed);
  }

  /// Actual expected FPR given current occupancy model (bits, k, inserted).
  [[nodiscard]] double effective_fpr() const noexcept {
    return expected_fpr(n_bits_, k_, insert_count());
  }

  /// FPR the filter was constructed for; 1.0 for the degenerate filter and
  /// for deserialized filters (the target is not on the wire). Telemetry
  /// compares this against the observed hit rate.
  [[nodiscard]] double target_fpr() const noexcept { return target_fpr_; }

  /// Lifetime query statistics, updated by contains()/contains_batch() with
  /// relaxed atomics — concurrent queries are race-free and the hot path
  /// stays two uncontended increments cheap.
  [[nodiscard]] std::uint64_t query_count() const noexcept {
    return queries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t hit_count() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  /// Fraction of queries that matched. Over a query stream dominated by
  /// non-members this converges on the observed FPR.
  [[nodiscard]] double observed_hit_rate() const noexcept {
    const std::uint64_t q = query_count();
    return q == 0 ? 0.0 : static_cast<double>(hit_count()) / static_cast<double>(q);
  }
  void reset_query_stats() const noexcept {
    queries_.store(0, std::memory_order_relaxed);
    hits_.store(0, std::memory_order_relaxed);
  }

  /// Wire format: varint(bit count) | u8(k + strategy) | u64(seed) |
  /// ceil(bits/8) payload bytes. The strategy rides in the k byte: high bit
  /// set = kRehash (k in the low 7 bits, legacy layout, byte 0xC0 still
  /// parses as rehash k=64); both top bits set with a non-zero low 6 bits =
  /// kBlocked (k in the low 6 bits) — a range of bytes that was previously
  /// rejected, so every pre-existing encoding keeps its meaning.
  /// Appends the wire encoding to `w` (scatter form of serialize()).
  void serialize_into(util::ByteWriter& w) const;
  [[nodiscard]] util::Bytes serialize() const;
  [[nodiscard]] std::size_t serialized_size() const noexcept;
  static BloomFilter deserialize(util::ByteReader& reader);

 private:
  void probe_positions(util::ByteView txid, std::uint64_t* out) const;
  /// Membership test without stats accounting (shared scalar core).
  [[nodiscard]] bool test(util::ByteView txid) const;
  /// Blocked layout: first word index of the block for `txid`, plus the
  /// in-block double-hashing state (x, y) packed by the caller.
  [[nodiscard]] std::uint64_t block_base(util::ByteView txid, std::uint32_t* x,
                                         std::uint32_t* y) const;
  [[nodiscard]] bool test_block(std::uint64_t base, std::uint32_t x, std::uint32_t y) const;
  void set_block(std::uint64_t base, std::uint32_t x, std::uint32_t y);
  void init_divisors();

  std::vector<std::uint64_t> bits_;
  std::uint64_t n_bits_ = 0;
  std::uint32_t k_ = 1;
  std::uint64_t seed_ = 0;
  std::atomic<std::uint64_t> inserted_{0};
  double target_fpr_ = 1.0;
  mutable std::atomic<std::uint64_t> queries_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  HashStrategy strategy_ = HashStrategy::kSplitDigest;
  /// Invariant-divisor reductions (exact, see util::FastMod64): by n_bits_
  /// for the split-digest probes, by the block count for the blocked layout.
  util::FastMod64 bits_div_;
  util::FastMod64 block_div_;
  /// mix64(seed_), hoisted out of the per-item probe derivation.
  std::uint64_t seed_mix_ = 0;
};

/// Chunked batch membership over `count` items: out[i] = 1 iff
/// filter.contains(items[i]), 0 otherwise. With a non-null, non-empty pool
/// the fixed-size chunks fan out across workers — contains() is safe for
/// concurrent readers and each chunk writes a disjoint out range, so the
/// result (and the filter's total query/hit counters) is identical for any
/// worker count, including none. This is the scan primitive behind the
/// receiver's candidate pass and the sender's serve() pass.
void contains_all(const BloomFilter& filter, const util::ByteView* items,
                  std::size_t count, std::uint8_t* out,
                  util::ThreadPool* pool = nullptr);

}  // namespace graphene::bloom
