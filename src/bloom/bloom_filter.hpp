// Bloom filter over 32-byte transaction IDs.
//
// Index derivation follows §6.3: a txid is already a cryptographic digest, so
// the filter slices it into 64-bit words and derives all k probe positions by
// double hashing over those words — no additional cryptographic hashing per
// probe. A `RehashStrategy` (k independent SipHash evaluations) is kept for
// the ablation benchmark that reproduces the §6.3 processing-time claim.
#pragma once

#include <cstdint>
#include <vector>

#include "bloom/bloom_math.hpp"
#include "util/bytes.hpp"
#include "util/hash.hpp"
#include "util/siphash.hpp"

namespace graphene::bloom {

enum class HashStrategy : std::uint8_t {
  kSplitDigest = 0,  ///< §6.3 optimization: slice the digest (default).
  kRehash = 1,       ///< k independent SipHash calls (ablation baseline).
};

class BloomFilter {
 public:
  /// Degenerate match-everything filter (FPR 1). Serializes to a header only;
  /// the paper treats this as "not sending a filter at all".
  BloomFilter() = default;

  /// Builds an empty filter sized for `expected_items` at `target_fpr`.
  /// target_fpr >= 1 yields the degenerate match-everything filter.
  BloomFilter(std::uint64_t expected_items, double target_fpr,
              std::uint64_t seed = 0, HashStrategy strategy = HashStrategy::kSplitDigest);

  /// Inserts a 32-byte txid (any 1..32-byte view accepted; shorter views are
  /// zero-extended by the word splitter).
  void insert(util::ByteView txid);

  /// Membership test; false positives occur at ~the configured FPR, false
  /// negatives never.
  [[nodiscard]] bool contains(util::ByteView txid) const;

  /// True when the filter matches every query (zero-bit filter).
  [[nodiscard]] bool matches_everything() const noexcept { return n_bits_ == 0; }

  [[nodiscard]] std::uint64_t bit_count() const noexcept { return n_bits_; }
  [[nodiscard]] std::uint32_t hash_count() const noexcept { return k_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::uint64_t insert_count() const noexcept { return inserted_; }

  /// Actual expected FPR given current occupancy model (bits, k, inserted).
  [[nodiscard]] double effective_fpr() const noexcept {
    return expected_fpr(n_bits_, k_, inserted_);
  }

  /// FPR the filter was constructed for; 1.0 for the degenerate filter and
  /// for deserialized filters (the target is not on the wire). Telemetry
  /// compares this against the observed hit rate.
  [[nodiscard]] double target_fpr() const noexcept { return target_fpr_; }

  /// Lifetime query statistics, updated by contains(). Counters are plain
  /// (not atomic): a filter is queried from one thread at a time in this
  /// codebase, and the hot path must stay two increments cheap.
  [[nodiscard]] std::uint64_t query_count() const noexcept { return queries_; }
  [[nodiscard]] std::uint64_t hit_count() const noexcept { return hits_; }
  /// Fraction of queries that matched. Over a query stream dominated by
  /// non-members this converges on the observed FPR.
  [[nodiscard]] double observed_hit_rate() const noexcept {
    return queries_ == 0 ? 0.0
                         : static_cast<double>(hits_) / static_cast<double>(queries_);
  }
  void reset_query_stats() const noexcept { queries_ = hits_ = 0; }

  /// Wire format: varint(bit count) | u8(k, high bit = strategy) | u64(seed)
  /// | ceil(bits/8) payload bytes.
  [[nodiscard]] util::Bytes serialize() const;
  [[nodiscard]] std::size_t serialized_size() const noexcept;
  static BloomFilter deserialize(util::ByteReader& reader);

 private:
  void probe_positions(util::ByteView txid, std::uint64_t* out) const;

  std::vector<std::uint64_t> bits_;
  std::uint64_t n_bits_ = 0;
  std::uint32_t k_ = 1;
  std::uint64_t seed_ = 0;
  std::uint64_t inserted_ = 0;
  double target_fpr_ = 1.0;
  mutable std::uint64_t queries_ = 0;
  mutable std::uint64_t hits_ = 0;
  HashStrategy strategy_ = HashStrategy::kSplitDigest;
};

}  // namespace graphene::bloom
