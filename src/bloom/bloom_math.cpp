#include "bloom/bloom_math.hpp"

#include <algorithm>
#include <cmath>

#include "util/varint.hpp"

namespace graphene::bloom {

namespace {
constexpr double kLn2 = 0.6931471805599453;
constexpr double kLn2Sq = kLn2 * kLn2;
}  // namespace

double ideal_bytes(double n, double fpr) noexcept {
  if (fpr >= 1.0 || n <= 0.0) return 0.0;
  fpr = std::max(fpr, 1e-12);
  return -n * std::log(fpr) / (8.0 * kLn2Sq);
}

std::uint64_t optimal_bits(std::uint64_t n, double fpr) noexcept {
  if (fpr >= 1.0 || n == 0) return 0;
  fpr = std::max(fpr, 1e-12);
  const double bits = -static_cast<double>(n) * std::log(fpr) / kLn2Sq;
  return static_cast<std::uint64_t>(std::max(1.0, std::ceil(bits)));
}

std::uint32_t optimal_hash_count(std::uint64_t bits, std::uint64_t n) noexcept {
  if (n == 0 || bits == 0) return 1;
  const double k = std::round(static_cast<double>(bits) / static_cast<double>(n) * kLn2);
  return static_cast<std::uint32_t>(std::clamp(k, 1.0, 64.0));
}

double expected_fpr(std::uint64_t bits, std::uint32_t k, std::uint64_t n) noexcept {
  if (bits == 0) return 1.0;
  if (n == 0) return 0.0;
  const double exponent =
      -static_cast<double>(k) * static_cast<double>(n) / static_cast<double>(bits);
  return std::pow(1.0 - std::exp(exponent), static_cast<double>(k));
}

std::size_t serialized_bytes(std::uint64_t n, double fpr) noexcept {
  const std::uint64_t bits = optimal_bits(n, fpr);
  const std::size_t payload = static_cast<std::size_t>((bits + 7) / 8);
  // Header: varint(bits) + u8 hash count + u64 seed (matches BloomFilter::serialize).
  return util::varint_size(bits) + 1 + 8 + payload;
}

}  // namespace graphene::bloom
