#include "bloom/bloom_filter.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/simd/simd.hpp"
#include "util/thread_pool.hpp"
#include "util/varint.hpp"
#include "util/wire_limits.hpp"

namespace graphene::bloom {

namespace {
constexpr std::uint32_t kMaxHashCount = 64;
/// kBlocked carries k in six bits of the strategy byte, so 63 is its cap.
constexpr std::uint32_t kMaxBlockedHashCount = 63;
/// Lookahead tile of the batch pipelines: probe state for a tile is computed
/// (and its blocks prefetched) before any block is tested, so the memory
/// latency of up to 32 cache lines overlaps instead of serializing.
constexpr std::size_t kBatchTile = 32;
constexpr std::uint32_t kBlockMask = BloomFilter::kBlockBits - 1;

inline void prefetch_read(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 1);
#else
  (void)p;
#endif
}

inline void prefetch_write(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 1, 1);
#else
  (void)p;
#endif
}
}  // namespace

BloomFilter::BloomFilter(std::uint64_t expected_items, double target_fpr, std::uint64_t seed,
                         HashStrategy strategy)
    : seed_(seed), target_fpr_(target_fpr < 1.0 ? target_fpr : 1.0), strategy_(strategy) {
  n_bits_ = optimal_bits(expected_items, target_fpr);
  if (n_bits_ == 0) {
    // The degenerate filter has no blocks; keep the legacy header byte so it
    // round-trips through every deserializer version.
    strategy_ = HashStrategy::kSplitDigest;
    return;
  }
  if (strategy_ == HashStrategy::kBlocked) {
    n_bits_ = ((n_bits_ + kBlockBits - 1) / kBlockBits) * kBlockBits;
  }
  k_ = optimal_hash_count(n_bits_, expected_items == 0 ? 1 : expected_items);
  if (strategy_ == HashStrategy::kBlocked) {
    k_ = std::min(k_, kMaxBlockedHashCount);
  }
  bits_.assign((n_bits_ + 63) / 64, 0);
  init_divisors();
}

BloomFilter::BloomFilter(const BloomFilter& other)
    : bits_(other.bits_),
      n_bits_(other.n_bits_),
      k_(other.k_),
      seed_(other.seed_),
      inserted_(other.inserted_.load(std::memory_order_relaxed)),
      target_fpr_(other.target_fpr_),
      queries_(other.queries_.load(std::memory_order_relaxed)),
      hits_(other.hits_.load(std::memory_order_relaxed)),
      strategy_(other.strategy_),
      bits_div_(other.bits_div_),
      block_div_(other.block_div_),
      seed_mix_(other.seed_mix_) {}

BloomFilter& BloomFilter::operator=(const BloomFilter& other) {
  if (this == &other) return *this;
  bits_ = other.bits_;
  n_bits_ = other.n_bits_;
  k_ = other.k_;
  seed_ = other.seed_;
  inserted_.store(other.inserted_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  target_fpr_ = other.target_fpr_;
  queries_.store(other.queries_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  hits_.store(other.hits_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  strategy_ = other.strategy_;
  bits_div_ = other.bits_div_;
  block_div_ = other.block_div_;
  seed_mix_ = other.seed_mix_;
  return *this;
}

BloomFilter::BloomFilter(BloomFilter&& other) noexcept
    : bits_(std::move(other.bits_)),
      n_bits_(other.n_bits_),
      k_(other.k_),
      seed_(other.seed_),
      inserted_(other.inserted_.load(std::memory_order_relaxed)),
      target_fpr_(other.target_fpr_),
      queries_(other.queries_.load(std::memory_order_relaxed)),
      hits_(other.hits_.load(std::memory_order_relaxed)),
      strategy_(other.strategy_),
      bits_div_(other.bits_div_),
      block_div_(other.block_div_),
      seed_mix_(other.seed_mix_) {}

BloomFilter& BloomFilter::operator=(BloomFilter&& other) noexcept {
  if (this == &other) return *this;
  bits_ = std::move(other.bits_);
  n_bits_ = other.n_bits_;
  k_ = other.k_;
  seed_ = other.seed_;
  inserted_.store(other.inserted_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  target_fpr_ = other.target_fpr_;
  queries_.store(other.queries_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  hits_.store(other.hits_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  strategy_ = other.strategy_;
  bits_div_ = other.bits_div_;
  block_div_ = other.block_div_;
  seed_mix_ = other.seed_mix_;
  return *this;
}

void BloomFilter::init_divisors() {
  seed_mix_ = util::mix64(seed_);
  if (n_bits_ == 0) return;
  bits_div_ = util::FastMod64(n_bits_);
  if (strategy_ == HashStrategy::kBlocked) {
    block_div_ = util::FastMod64(n_bits_ / kBlockBits);
  }
}

void BloomFilter::probe_positions(util::ByteView txid, std::uint64_t* out) const {
  if (strategy_ == HashStrategy::kSplitDigest) {
    // §6.3: derive probes from the digest's own entropy; the seed
    // decorrelates filters built by different peers. Enhanced double hashing
    // (Dillinger–Manolios, the paper's [19, 20]) — the quadratic `y += i`
    // term removes plain double hashing's FPR inflation at large k. All
    // reductions go through the invariant-divisor path (exact, so positions
    // are bit-identical to the original `%` formulation).
    const auto words = util::split_digest_words(txid);
    std::uint64_t x = bits_div_.mod(words[0] ^ seed_mix_);
    std::uint64_t y = bits_div_.mod(words[1] ^ words[2]);
    for (std::uint32_t i = 0; i < k_; ++i) {
      out[i] = x;
      x += y;  // x, y < n_bits_, so one conditional subtract reduces exactly
      if (x >= n_bits_) x -= n_bits_;
      y += i + 1;
      if (y >= n_bits_) y = bits_div_.mod(y);
    }
  } else {
    for (std::uint32_t i = 0; i < k_; ++i) {
      const util::SipHashKey key{seed_, seed_ ^ (0x5bd1e995UL + i)};
      out[i] = bits_div_.mod(util::siphash24(key, txid));
    }
  }
}

std::uint64_t BloomFilter::block_base(util::ByteView txid, std::uint32_t* x,
                                      std::uint32_t* y) const {
  const auto words = util::split_digest_words(txid);
  const std::uint64_t block = block_div_.mod(words[0] ^ seed_mix_);
  *x = static_cast<std::uint32_t>(words[1]) & kBlockMask;
  *y = static_cast<std::uint32_t>(words[2]) & kBlockMask;
  return block * (kBlockBits / 64);
}

bool BloomFilter::test_block(std::uint64_t base, std::uint32_t x, std::uint32_t y) const {
  return util::simd::active().bloom_test_block(bits_.data() + base, k_, x, y);
}

void BloomFilter::set_block(std::uint64_t base, std::uint32_t x, std::uint32_t y) {
  util::simd::active().bloom_set_block(bits_.data() + base, k_, x, y);
}

bool BloomFilter::test(util::ByteView txid) const {
  if (strategy_ == HashStrategy::kBlocked) {
    std::uint32_t x = 0;
    std::uint32_t y = 0;
    const std::uint64_t base = block_base(txid, &x, &y);
    return test_block(base, x, y);
  }
  std::uint64_t pos[kMaxHashCount];
  probe_positions(txid, pos);
  for (std::uint32_t i = 0; i < k_; ++i) {
    if ((bits_[pos[i] / 64] & (1ULL << (pos[i] % 64))) == 0) return false;
  }
  return true;
}

void BloomFilter::insert(util::ByteView txid) {
  inserted_.fetch_add(1, std::memory_order_relaxed);
  if (n_bits_ == 0) return;
  if (strategy_ == HashStrategy::kBlocked) {
    std::uint32_t x = 0;
    std::uint32_t y = 0;
    const std::uint64_t base = block_base(txid, &x, &y);
    set_block(base, x, y);
    return;
  }
  std::uint64_t pos[kMaxHashCount];
  probe_positions(txid, pos);
  for (std::uint32_t i = 0; i < k_; ++i) {
    bits_[pos[i] / 64] |= (1ULL << (pos[i] % 64));
  }
}

void BloomFilter::insert_batch(const util::ByteView* items, std::size_t count) {
  inserted_.fetch_add(count, std::memory_order_relaxed);
  if (n_bits_ == 0 || count == 0) return;
  if (strategy_ == HashStrategy::kBlocked) {
    std::uint64_t base[kBatchTile];
    std::uint32_t bx[kBatchTile];
    std::uint32_t by[kBatchTile];
    for (std::size_t t = 0; t < count; t += kBatchTile) {
      const std::size_t tile = std::min(kBatchTile, count - t);
      for (std::size_t j = 0; j < tile; ++j) {
        base[j] = block_base(items[t + j], &bx[j], &by[j]);
        prefetch_write(&bits_[base[j]]);
      }
      for (std::size_t j = 0; j < tile; ++j) set_block(base[j], bx[j], by[j]);
    }
    return;
  }
  std::uint64_t pos[kMaxHashCount];
  for (std::size_t idx = 0; idx < count; ++idx) {
    probe_positions(items[idx], pos);
    for (std::uint32_t i = 0; i < k_; ++i) {
      bits_[pos[i] / 64] |= (1ULL << (pos[i] % 64));
    }
  }
}

bool BloomFilter::contains(util::ByteView txid) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (n_bits_ == 0) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  const bool hit = test(txid);
  if (hit) hits_.fetch_add(1, std::memory_order_relaxed);
  return hit;
}

void BloomFilter::contains_batch(const util::ByteView* items, std::size_t count,
                                 std::uint8_t* out) const {
  if (count == 0) return;
  queries_.fetch_add(count, std::memory_order_relaxed);
  if (n_bits_ == 0) {
    std::fill(out, out + count, std::uint8_t{1});
    hits_.fetch_add(count, std::memory_order_relaxed);
    return;
  }
  std::uint64_t batch_hits = 0;
  if (strategy_ == HashStrategy::kBlocked) {
    std::uint64_t base[kBatchTile];
    std::uint32_t bx[kBatchTile];
    std::uint32_t by[kBatchTile];
    for (std::size_t t = 0; t < count; t += kBatchTile) {
      const std::size_t tile = std::min(kBatchTile, count - t);
      for (std::size_t j = 0; j < tile; ++j) {
        base[j] = block_base(items[t + j], &bx[j], &by[j]);
        prefetch_read(&bits_[base[j]]);
      }
      for (std::size_t j = 0; j < tile; ++j) {
        const bool hit = test_block(base[j], bx[j], by[j]);
        out[t + j] = hit ? 1 : 0;
        batch_hits += hit ? 1 : 0;
      }
    }
  } else {
    for (std::size_t idx = 0; idx < count; ++idx) {
      const bool hit = test(items[idx]);
      out[idx] = hit ? 1 : 0;
      batch_hits += hit ? 1 : 0;
    }
  }
  hits_.fetch_add(batch_hits, std::memory_order_relaxed);
}

void BloomFilter::serialize_into(util::ByteWriter& w) const {
  util::write_varint(w, n_bits_);
  std::uint8_t k_byte = 0;
  switch (strategy_) {
    case HashStrategy::kSplitDigest: k_byte = static_cast<std::uint8_t>(k_ & 0x7f); break;
    case HashStrategy::kRehash:
      k_byte = static_cast<std::uint8_t>((k_ & 0x7f) | 0x80);
      break;
    case HashStrategy::kBlocked:
      k_byte = static_cast<std::uint8_t>((k_ & 0x3f) | 0xc0);
      break;
  }
  w.u8(k_byte);
  w.u64(seed_);
  w.words_le(bits_.data(), static_cast<std::size_t>((n_bits_ + 7) / 8));
}

util::Bytes BloomFilter::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

std::size_t BloomFilter::serialized_size() const noexcept {
  return util::varint_size(n_bits_) + 1 + 8 + static_cast<std::size_t>((n_bits_ + 7) / 8);
}

BloomFilter BloomFilter::deserialize(util::ByteReader& reader) {
  BloomFilter f;
  // Capped before any arithmetic: an unchecked 2^64-range bit count would
  // wrap `(n_bits_ + 7) / 8` to a tiny payload while `(n_bits_ + 63) / 64`
  // still drives a huge allocation.
  f.n_bits_ = util::read_varint_bounded(reader, util::wire::kMaxBloomBits, "BloomFilter bits");
  const std::uint8_t k_byte = reader.u8();
  if ((k_byte & 0xc0) == 0xc0 && (k_byte & 0x3f) != 0) {
    // Blocked layout: previously-rejected byte range, so legacy encodings
    // are unaffected (0xc0 itself still parses as rehash k=64 below).
    f.strategy_ = HashStrategy::kBlocked;
    f.k_ = k_byte & 0x3f;
    if (f.n_bits_ == 0 || f.n_bits_ % kBlockBits != 0) {
      throw util::DeserializeError("BloomFilter: blocked layout requires whole blocks");
    }
  } else {
    f.k_ = k_byte & 0x7f;
    f.strategy_ = (k_byte & 0x80) ? HashStrategy::kRehash : HashStrategy::kSplitDigest;
    if (f.k_ == 0 || f.k_ > kMaxHashCount) {
      throw util::DeserializeError("BloomFilter: invalid hash count");
    }
  }
  f.seed_ = reader.u64();
  const std::size_t payload = static_cast<std::size_t>((f.n_bits_ + 7) / 8);
  if (payload > reader.remaining()) {
    throw util::DeserializeError("BloomFilter: bit count exceeds buffer");
  }
  f.bits_.assign((f.n_bits_ + 63) / 64, 0);
  reader.words_le_into(f.bits_.data(), payload);
  f.init_divisors();
  return f;
}

void contains_all(const BloomFilter& filter, const util::ByteView* items,
                  std::size_t count, std::uint8_t* out, util::ThreadPool* pool) {
  // Chunk size is a constant, so the decomposition — and the per-item output
  // — never depends on the worker count.
  constexpr std::size_t kChunk = 4096;
  if (pool == nullptr || pool->size() == 0 || count < 2 * kChunk) {
    filter.contains_batch(items, count, out);
    return;
  }
  const std::uint64_t chunks = (count + kChunk - 1) / kChunk;
  util::parallel_for(pool, chunks, [&](std::uint64_t c) {
    const std::size_t begin = static_cast<std::size_t>(c) * kChunk;
    const std::size_t len = std::min(kChunk, count - begin);
    filter.contains_batch(items + begin, len, out + begin);
  });
}

}  // namespace graphene::bloom
