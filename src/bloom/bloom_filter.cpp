#include "bloom/bloom_filter.hpp"

#include <stdexcept>

#include "util/varint.hpp"
#include "util/wire_limits.hpp"

namespace graphene::bloom {

namespace {
constexpr std::uint32_t kMaxHashCount = 64;
}

BloomFilter::BloomFilter(std::uint64_t expected_items, double target_fpr, std::uint64_t seed,
                         HashStrategy strategy)
    : seed_(seed), target_fpr_(target_fpr < 1.0 ? target_fpr : 1.0), strategy_(strategy) {
  n_bits_ = optimal_bits(expected_items, target_fpr);
  if (n_bits_ > 0) {
    k_ = optimal_hash_count(n_bits_, expected_items == 0 ? 1 : expected_items);
    bits_.assign((n_bits_ + 63) / 64, 0);
  }
}

void BloomFilter::probe_positions(util::ByteView txid, std::uint64_t* out) const {
  if (strategy_ == HashStrategy::kSplitDigest) {
    // §6.3: derive probes from the digest's own entropy; the seed
    // decorrelates filters built by different peers. Enhanced double hashing
    // (Dillinger–Manolios, the paper's [19, 20]) — the quadratic `y += i`
    // term removes plain double hashing's FPR inflation at large k.
    const auto words = util::split_digest_words(txid);
    std::uint64_t x = (words[0] ^ util::mix64(seed_)) % n_bits_;
    std::uint64_t y = (words[1] ^ words[2]) % n_bits_;
    for (std::uint32_t i = 0; i < k_; ++i) {
      out[i] = x;
      x = (x + y) % n_bits_;
      y = (y + i + 1) % n_bits_;
    }
  } else {
    for (std::uint32_t i = 0; i < k_; ++i) {
      const util::SipHashKey key{seed_, seed_ ^ (0x5bd1e995UL + i)};
      out[i] = util::siphash24(key, txid) % n_bits_;
    }
  }
}

void BloomFilter::insert(util::ByteView txid) {
  ++inserted_;
  if (n_bits_ == 0) return;
  std::uint64_t pos[kMaxHashCount];
  probe_positions(txid, pos);
  for (std::uint32_t i = 0; i < k_; ++i) {
    bits_[pos[i] / 64] |= (1ULL << (pos[i] % 64));
  }
}

bool BloomFilter::contains(util::ByteView txid) const {
  ++queries_;
  if (n_bits_ == 0) {
    ++hits_;
    return true;
  }
  std::uint64_t pos[kMaxHashCount];
  probe_positions(txid, pos);
  for (std::uint32_t i = 0; i < k_; ++i) {
    if ((bits_[pos[i] / 64] & (1ULL << (pos[i] % 64))) == 0) return false;
  }
  ++hits_;
  return true;
}

util::Bytes BloomFilter::serialize() const {
  util::ByteWriter w;
  util::write_varint(w, n_bits_);
  w.u8(static_cast<std::uint8_t>((k_ & 0x7f) |
                                 (strategy_ == HashStrategy::kRehash ? 0x80 : 0)));
  w.u64(seed_);
  const std::size_t payload = static_cast<std::size_t>((n_bits_ + 7) / 8);
  for (std::size_t byte = 0; byte < payload; ++byte) {
    w.u8(static_cast<std::uint8_t>(bits_[byte / 8] >> (8 * (byte % 8))));
  }
  return w.take();
}

std::size_t BloomFilter::serialized_size() const noexcept {
  return util::varint_size(n_bits_) + 1 + 8 + static_cast<std::size_t>((n_bits_ + 7) / 8);
}

BloomFilter BloomFilter::deserialize(util::ByteReader& reader) {
  BloomFilter f;
  // Capped before any arithmetic: an unchecked 2^64-range bit count would
  // wrap `(n_bits_ + 7) / 8` to a tiny payload while `(n_bits_ + 63) / 64`
  // still drives a huge allocation.
  f.n_bits_ = util::read_varint_bounded(reader, util::wire::kMaxBloomBits, "BloomFilter bits");
  const std::uint8_t kByte = reader.u8();
  f.k_ = kByte & 0x7f;
  f.strategy_ = (kByte & 0x80) ? HashStrategy::kRehash : HashStrategy::kSplitDigest;
  if (f.k_ == 0 || f.k_ > kMaxHashCount) {
    throw util::DeserializeError("BloomFilter: invalid hash count");
  }
  f.seed_ = reader.u64();
  const std::size_t payload = static_cast<std::size_t>((f.n_bits_ + 7) / 8);
  if (payload > reader.remaining()) {
    throw util::DeserializeError("BloomFilter: bit count exceeds buffer");
  }
  f.bits_.assign((f.n_bits_ + 63) / 64, 0);
  for (std::size_t byte = 0; byte < payload; ++byte) {
    f.bits_[byte / 8] |= static_cast<std::uint64_t>(reader.u8()) << (8 * (byte % 8));
  }
  return f;
}

}  // namespace graphene::bloom
