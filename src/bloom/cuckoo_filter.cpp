#include "bloom/cuckoo_filter.hpp"

#include <algorithm>
#include <cmath>

#include "util/random.hpp"
#include "util/varint.hpp"
#include "util/wire_limits.hpp"

namespace graphene::bloom {

namespace {

constexpr double kTargetLoad = 0.95;

/// Fingerprint width for a target FPR: f ≈ 2·kBucketSize / 2^w.
std::uint32_t fp_bits_for(double fpr) noexcept {
  fpr = std::clamp(fpr, 1e-9, 1.0);
  const double bits = std::log2(2.0 * CuckooFilter::kBucketSize / fpr);
  return static_cast<std::uint32_t>(std::clamp(std::ceil(bits), 4.0, 16.0));
}

std::uint64_t round_up_pow2(std::uint64_t v) noexcept {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

CuckooFilter::CuckooFilter(std::uint64_t expected_items, double target_fpr,
                           std::uint64_t seed)
    : seed_(seed) {
  if (target_fpr >= 1.0 || expected_items == 0) return;  // degenerate
  fp_bits_ = fp_bits_for(target_fpr);
  const auto needed = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(expected_items) / (kTargetLoad * kBucketSize)));
  // Power-of-two buckets keep the partial-key alt-index involutive.
  buckets_ = round_up_pow2(std::max<std::uint64_t>(needed, 2));
  table_.assign(buckets_, Slots{});
}

std::uint16_t CuckooFilter::fingerprint(std::uint64_t h) const noexcept {
  const std::uint64_t mask = (1ULL << fp_bits_) - 1;
  auto fp = static_cast<std::uint16_t>((h >> 32) & mask);
  return fp == 0 ? 1 : fp;  // 0 marks an empty slot
}

std::uint64_t CuckooFilter::index1(std::uint64_t h) const noexcept {
  return h & (buckets_ - 1);
}

std::uint64_t CuckooFilter::alt_index(std::uint64_t i, std::uint16_t fp) const noexcept {
  // Partial-key displacement: xor with a hash of the fingerprint.
  return (i ^ util::mix64(fp * 0x5bd1e9955bd1e995ULL)) & (buckets_ - 1);
}

bool CuckooFilter::bucket_insert(std::uint64_t i, std::uint16_t fp) {
  for (auto& slot : table_[i].fp) {
    if (slot == 0) {
      slot = fp;
      return true;
    }
  }
  return false;
}

bool CuckooFilter::bucket_contains(std::uint64_t i, std::uint16_t fp) const noexcept {
  for (const auto& slot : table_[i].fp) {
    if (slot == fp) return true;
  }
  return false;
}

bool CuckooFilter::bucket_erase(std::uint64_t i, std::uint16_t fp) {
  for (auto& slot : table_[i].fp) {
    if (slot == fp) {
      slot = 0;
      return true;
    }
  }
  return false;
}

bool CuckooFilter::insert(util::ByteView digest) {
  ++inserted_;
  if (buckets_ == 0) return true;
  const std::uint64_t h = util::hash64(digest, seed_);
  std::uint16_t fp = fingerprint(h);
  const std::uint64_t i1 = index1(h);
  if (bucket_insert(i1, fp)) return true;
  const std::uint64_t i2 = alt_index(i1, fp);
  if (bucket_insert(i2, fp)) return true;

  // Kick a random resident and relocate it, up to kMaxKicks.
  util::Rng rng(h ^ seed_);
  std::uint64_t i = rng.chance(0.5) ? i1 : i2;
  for (std::uint32_t kick = 0; kick < kMaxKicks; ++kick) {
    const std::uint64_t victim_slot = rng.below(kBucketSize);
    std::swap(fp, table_[i].fp[victim_slot]);
    i = alt_index(i, fp);
    if (bucket_insert(i, fp)) return true;
  }
  // Table effectively full: stash the victim so lookups stay correct.
  stash_.push_back(fp);
  return false;
}

bool CuckooFilter::contains(util::ByteView digest) const {
  if (buckets_ == 0) return true;
  const std::uint64_t h = util::hash64(digest, seed_);
  const std::uint16_t fp = fingerprint(h);
  const std::uint64_t i1 = index1(h);
  if (bucket_contains(i1, fp)) return true;
  if (bucket_contains(alt_index(i1, fp), fp)) return true;
  return std::find(stash_.begin(), stash_.end(), fp) != stash_.end();
}

bool CuckooFilter::erase(util::ByteView digest) {
  if (buckets_ == 0) return false;
  const std::uint64_t h = util::hash64(digest, seed_);
  const std::uint16_t fp = fingerprint(h);
  const std::uint64_t i1 = index1(h);
  if (bucket_erase(i1, fp)) return true;
  if (bucket_erase(alt_index(i1, fp), fp)) return true;
  const auto it = std::find(stash_.begin(), stash_.end(), fp);
  if (it != stash_.end()) {
    stash_.erase(it);
    return true;
  }
  return false;
}

void CuckooFilter::serialize_into(util::ByteWriter& w) const {
  util::write_varint(w, buckets_);
  w.u8(static_cast<std::uint8_t>(fp_bits_));
  w.u64(seed_);
  util::write_varint(w, stash_.size());
  for (const std::uint16_t fp : stash_) w.u16(fp);
  // Pack fingerprints at fp_bits_ each.
  std::uint64_t acc = 0;
  std::uint32_t acc_bits = 0;
  for (const Slots& bucket : table_) {
    for (const std::uint16_t fp : bucket.fp) {
      acc |= static_cast<std::uint64_t>(fp) << acc_bits;
      acc_bits += fp_bits_;
      while (acc_bits >= 8) {
        w.u8(static_cast<std::uint8_t>(acc));
        acc >>= 8;
        acc_bits -= 8;
      }
    }
  }
  if (acc_bits > 0) w.u8(static_cast<std::uint8_t>(acc));
}

util::Bytes CuckooFilter::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

std::size_t CuckooFilter::serialized_size() const noexcept {
  const std::uint64_t payload_bits = buckets_ * kBucketSize * fp_bits_;
  return util::varint_size(buckets_) + 1 + 8 + util::varint_size(stash_.size()) +
         stash_.size() * 2 + static_cast<std::size_t>((payload_bits + 7) / 8);
}

CuckooFilter CuckooFilter::deserialize(util::ByteReader& reader) {
  CuckooFilter f(0, 1.0);
  f.buckets_ =
      util::read_varint_bounded(reader, util::wire::kMaxCuckooBuckets, "CuckooFilter buckets");
  f.fp_bits_ = reader.u8();
  if (f.buckets_ != 0 && (f.buckets_ & (f.buckets_ - 1)) != 0) {
    throw util::DeserializeError("CuckooFilter: bucket count not a power of two");
  }
  if (f.fp_bits_ < 4 || f.fp_bits_ > 16) {
    throw util::DeserializeError("CuckooFilter: invalid fingerprint width");
  }
  if (f.buckets_ > reader.remaining()) {  // cheap pre-allocation guard
    throw util::DeserializeError("CuckooFilter: bucket count exceeds buffer");
  }
  f.seed_ = reader.u64();
  const std::uint64_t stash_count =
      util::read_varint_bounded(reader, util::wire::kMaxWireCollection, "CuckooFilter stash");
  if (stash_count > reader.remaining() / 2) {
    throw util::DeserializeError("CuckooFilter: stash exceeds buffer");
  }
  f.stash_.resize(stash_count);
  for (auto& fp : f.stash_) fp = reader.u16();

  // Tight payload bound: 4 fingerprints of fp_bits_ each per bucket. The
  // product cannot overflow (buckets <= 2^28, fp_bits <= 16).
  const std::uint64_t payload_bits = f.buckets_ * kBucketSize * f.fp_bits_;
  if ((payload_bits + 7) / 8 > reader.remaining()) {
    throw util::DeserializeError("CuckooFilter: bucket count exceeds buffer");
  }
  f.table_.assign(f.buckets_, Slots{});
  std::uint64_t acc = 0;
  std::uint32_t acc_bits = 0;
  const std::uint16_t mask = static_cast<std::uint16_t>((1U << f.fp_bits_) - 1);
  for (Slots& bucket : f.table_) {
    for (auto& fp : bucket.fp) {
      while (acc_bits < f.fp_bits_) {
        acc |= static_cast<std::uint64_t>(reader.u8()) << acc_bits;
        acc_bits += 8;
      }
      fp = static_cast<std::uint16_t>(acc & mask);
      acc >>= f.fp_bits_;
      acc_bits -= f.fp_bits_;
    }
  }
  return f;
}

std::size_t cuckoo_serialized_bytes(std::uint64_t n, double fpr) noexcept {
  if (fpr >= 1.0 || n == 0) return 1 + 1 + 8 + 1;
  const std::uint32_t w = fp_bits_for(fpr);
  const auto needed = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(n) / (kTargetLoad * CuckooFilter::kBucketSize)));
  const std::uint64_t buckets = round_up_pow2(std::max<std::uint64_t>(needed, 2));
  const std::uint64_t bits = buckets * CuckooFilter::kBucketSize * w;
  return util::varint_size(buckets) + 1 + 8 + 1 + static_cast<std::size_t>((bits + 7) / 8);
}

}  // namespace graphene::bloom
