// Relay daemon under load: one RelayDaemon on localhost serving the full
// loadgen engine — by default 1000 concurrent TCP peers per backend, each
// running several reconcile sessions back to back on one connection.
//
// Reports sustained sessions/sec and p50/p95/p99 session latency, both
// exact (loadgen's recorded latencies) and from the src/obs log-bucketed
// histogram the engine mirrors into, and writes BENCH_daemon.json
// (overwritten each run) for CI artifact upload. Exits non-zero if session
// failures exceed the protocol's own 1 − β budget, any connection errors,
// or the daemon leaks a connection — the CI smoke leg doubles as the load
// acceptance gate.
//
// One ParamCache and one obs::Registry are shared by the daemon and every
// loadgen worker: Algorithm 1 runs once per set size, not once per session.
// Honors GRAPHENE_FAST=1 (128 peers instead of 1000) and GRAPHENE_DAEMON_PEERS.
#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "daemon/daemon.hpp"
#include "daemon/loadgen.hpp"
#include "iblt/param_cache.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "util/random.hpp"

namespace {

using namespace graphene;

reconcile::ItemSet random_set(util::Rng& rng, std::uint64_t count) {
  reconcile::ItemSet out;
  out.reserve(count);
  while (out.size() < count) {
    reconcile::ItemDigest d;
    for (auto& byte : d) byte = static_cast<std::uint8_t>(rng.next());
    out.insert(d);
  }
  return out;
}

/// The bench holds both ends of every connection in one process, so the
/// default soft fd limit (often 1024) is the first bottleneck — raise it to
/// the hard limit before opening anything.
void raise_fd_limit() {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  if (lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    (void)setrlimit(RLIMIT_NOFILE, &lim);
  }
}

struct BackendRun {
  const char* name;
  daemon::LoadgenReport report;
  daemon::DaemonStats stats;
  std::uint64_t hist_p50 = 0, hist_p95 = 0, hist_p99 = 0;
  bool ok = false;
};

}  // namespace

int main() {
  raise_fd_limit();
  const char* fast_env = std::getenv("GRAPHENE_FAST");
  const bool fast = fast_env != nullptr && *fast_env == '1';
  std::uint64_t peers = fast ? 128 : 1000;
  if (const char* env = std::getenv("GRAPHENE_DAEMON_PEERS")) {
    peers = std::max(1ul, std::strtoul(env, nullptr, 10));
  }
  const std::uint64_t sessions_per_conn = 4;
  const std::uint64_t workers =
      std::clamp<std::uint64_t>(std::thread::hardware_concurrency(), 2, 8);

  util::Rng rng(0xdae0510ad);
  const reconcile::ItemSet shared = random_set(rng, 450);
  reconcile::ItemSet host_items = shared;
  for (const reconcile::ItemDigest& d : random_set(rng, 50)) host_items.insert(d);
  reconcile::ItemSet client_items = shared;
  for (const reconcile::ItemDigest& d : random_set(rng, 30)) client_items.insert(d);

  iblt::ParamCache cache;
  obs::Registry reg;

  std::printf("=== Relay daemon load: %llu peers x %llu sessions, %llu workers ===\n\n",
              static_cast<unsigned long long>(peers),
              static_cast<unsigned long long>(sessions_per_conn),
              static_cast<unsigned long long>(workers));

  struct BackendSpec {
    core::ReconcileBackend id;
    const char* name;
  };
  const BackendSpec backends[] = {
      {core::ReconcileBackend::kGraphene, "graphene"},
      {core::ReconcileBackend::kRatelessIblt, "rateless_iblt"},
  };

  std::vector<BackendRun> runs;
  bool gate_ok = true;
  for (const BackendSpec& backend : backends) {
    daemon::DaemonOptions opts;
    opts.protocol.param_cache = &cache;
    opts.protocol.obs = &reg;
    opts.max_connections = peers + 64;
    daemon::RelayDaemon served(host_items, opts);
    const std::uint16_t port = served.listen("127.0.0.1", 0);
    if (port == 0) {
      std::fprintf(stderr, "bench_daemon_load: cannot bind localhost\n");
      return 1;
    }
    served.start();

    daemon::LoadgenOptions lg;
    lg.port = port;
    lg.connections = peers;
    lg.sessions_per_conn = sessions_per_conn;
    lg.workers = workers;
    lg.items = &client_items;
    lg.protocol.reconcile_backend = backend.id;
    lg.protocol.param_cache = &cache;
    lg.protocol.obs = &reg;
    lg.deadline_ns = 300ULL * 1000 * 1000 * 1000;

    BackendRun run;
    run.name = backend.name;
    run.report = daemon::run_loadgen(lg);
    served.stop();
    run.stats = served.stats();

    const auto& hist = reg.histogram("loadgen_session_ns");
    run.hist_p50 = hist.quantile(0.50);
    run.hist_p95 = hist.quantile(0.95);
    run.hist_p99 = hist.quantile(0.99);

    // Graphene promises β-assurance (239/240), not certainty: a session can
    // exhaust repair and fail honestly, so the gate budgets failures at the
    // protocol's own 1 − β rate (min 1) instead of demanding zero.
    const std::uint64_t expected = peers * sessions_per_conn;
    const std::uint64_t failure_budget = std::max<std::uint64_t>(1, expected / 240);
    run.ok = run.report.sessions_ok + run.report.sessions_failed == expected &&
             run.report.sessions_failed <= failure_budget &&
             run.report.conn_errors == 0 && served.open_connections() == 0 &&
             run.stats.conns_opened == run.stats.conns_closed;
    gate_ok = gate_ok && run.ok;

    std::printf("--- %s ---\n", run.name);
    std::printf("  sessions ok/failed: %llu / %llu   conn errors: %llu\n",
                static_cast<unsigned long long>(run.report.sessions_ok),
                static_cast<unsigned long long>(run.report.sessions_failed),
                static_cast<unsigned long long>(run.report.conn_errors));
    std::printf("  sustained: %.0f sessions/sec over %.2f s\n",
                run.report.sessions_per_sec,
                static_cast<double>(run.report.elapsed_ns) / 1e9);
    std::printf("  latency exact  p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n",
                static_cast<double>(run.report.p50_ns) / 1e6,
                static_cast<double>(run.report.p95_ns) / 1e6,
                static_cast<double>(run.report.p99_ns) / 1e6);
    std::printf("  latency obs    p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n",
                static_cast<double>(run.hist_p50) / 1e6,
                static_cast<double>(run.hist_p95) / 1e6,
                static_cast<double>(run.hist_p99) / 1e6);
    std::printf("  daemon: %llu conns, %llu sessions ok, %llu failed\n\n",
                static_cast<unsigned long long>(run.stats.conns_opened),
                static_cast<unsigned long long>(run.stats.sessions_ok),
                static_cast<unsigned long long>(run.stats.sessions_failed));
    runs.push_back(run);
  }

  std::ofstream json("BENCH_daemon.json");
  obs::json::Writer w;
  w.begin_object();
  w.key("peers");
  w.number(peers);
  w.key("sessions_per_conn");
  w.number(sessions_per_conn);
  w.key("workers");
  w.number(workers);
  w.key("gate_ok");
  w.boolean(gate_ok);
  w.key("backends");
  w.begin_array();
  for (const BackendRun& run : runs) {
    w.begin_object();
    w.key("backend");
    w.string(run.name);
    w.key("sessions_ok");
    w.number(run.report.sessions_ok);
    w.key("sessions_failed");
    w.number(run.report.sessions_failed);
    w.key("conn_errors");
    w.number(run.report.conn_errors);
    w.key("elapsed_s");
    w.number(static_cast<double>(run.report.elapsed_ns) / 1e9);
    w.key("sessions_per_sec");
    w.number(run.report.sessions_per_sec);
    w.key("p50_ms");
    w.number(static_cast<double>(run.report.p50_ns) / 1e6);
    w.key("p95_ms");
    w.number(static_cast<double>(run.report.p95_ns) / 1e6);
    w.key("p99_ms");
    w.number(static_cast<double>(run.report.p99_ns) / 1e6);
    w.key("obs_p50_ms");
    w.number(static_cast<double>(run.hist_p50) / 1e6);
    w.key("obs_p95_ms");
    w.number(static_cast<double>(run.hist_p95) / 1e6);
    w.key("obs_p99_ms");
    w.number(static_cast<double>(run.hist_p99) / 1e6);
    w.key("bytes_in");
    w.number(run.report.bytes_in);
    w.key("bytes_out");
    w.number(run.report.bytes_out);
    w.key("ok");
    w.boolean(run.ok);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  json << w.str() << '\n';
  std::printf("wrote BENCH_daemon.json\n");

  if (!gate_ok) {
    std::printf("GATE FAILED: sessions failed, connections errored, or leaked\n");
    return 1;
  }
  std::printf("gate ok: both backends stayed within the beta failure budget\n");
  return 0;
}
