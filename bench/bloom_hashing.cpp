// §6.3 ablation: deriving Bloom probe positions by slicing the txid
// (kSplitDigest) versus k independent SipHash evaluations (kRehash). The
// paper reports the optimization nearly halving receiver processing time
// (17.8 ms → 9.5 ms per block in their Geth implementation).
#include <benchmark/benchmark.h>

#include <vector>

#include "bloom/bloom_filter.hpp"
#include "chain/transaction.hpp"
#include "util/random.hpp"

namespace {

using namespace graphene;

std::vector<chain::TxId> make_ids(std::size_t count) {
  util::Rng rng(7);
  std::vector<chain::TxId> ids(count);
  for (auto& id : ids) id = chain::make_random_transaction(rng).id;
  return ids;
}

constexpr std::size_t kMempool = 10000;
constexpr std::size_t kBlock = 2000;
constexpr double kFpr = 0.01;

void run_pass(bloom::HashStrategy strategy, benchmark::State& state) {
  const auto block_ids = make_ids(kBlock);
  const auto mempool_ids = make_ids(kMempool);
  bloom::BloomFilter filter(kBlock, kFpr, /*seed=*/5, strategy);
  for (const auto& id : block_ids) filter.insert(util::ByteView(id.data(), id.size()));

  for (auto _ : state) {
    std::size_t hits = 0;
    for (const auto& id : mempool_ids) {
      hits += filter.contains(util::ByteView(id.data(), id.size())) ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kMempool));
}

void BM_MempoolPass_SplitDigest(benchmark::State& state) {
  run_pass(bloom::HashStrategy::kSplitDigest, state);
}
BENCHMARK(BM_MempoolPass_SplitDigest)->Unit(benchmark::kMillisecond);

void BM_MempoolPass_Rehash(benchmark::State& state) {
  run_pass(bloom::HashStrategy::kRehash, state);
}
BENCHMARK(BM_MempoolPass_Rehash)->Unit(benchmark::kMillisecond);

void BM_Insert_SplitDigest(benchmark::State& state) {
  const auto ids = make_ids(kBlock);
  for (auto _ : state) {
    bloom::BloomFilter filter(kBlock, kFpr, 5, bloom::HashStrategy::kSplitDigest);
    for (const auto& id : ids) filter.insert(util::ByteView(id.data(), id.size()));
    benchmark::DoNotOptimize(filter.bit_count());
  }
}
BENCHMARK(BM_Insert_SplitDigest)->Unit(benchmark::kMicrosecond);

void BM_Insert_Rehash(benchmark::State& state) {
  const auto ids = make_ids(kBlock);
  for (auto _ : state) {
    bloom::BloomFilter filter(kBlock, kFpr, 5, bloom::HashStrategy::kRehash);
    for (const auto& id : ids) filter.insert(util::ByteView(id.data(), id.size()));
    benchmark::DoNotOptimize(filter.bit_count());
  }
}
BENCHMARK(BM_Insert_Rehash)->Unit(benchmark::kMicrosecond);

}  // namespace
