// Fig. 10: size (cells) of optimally-parameterized IBLTs for the three
// decode-failure targets, versus the static (k = 4, τ = 1.5) rule.
//
// Expected shape: optimal size grows linearly in j, stricter targets sit
// higher, and the static line under-allocates small j badly while roughly
// tracking the loosest target for large j.
#include <iostream>

#include "iblt/param_table.hpp"
#include "sim/table.hpp"

int main() {
  using namespace graphene;
  std::cout << "=== Fig. 10: optimal IBLT size (cells) by target decode rate ===\n\n";

  sim::TablePrinter table({"j", "static (k=4,t=1.5)", "1/24", "1/240", "1/2400",
                           "1/240 bytes"});
  for (const std::uint64_t j :
       {1ULL, 2ULL, 5ULL, 10ULL, 20ULL, 50ULL, 100ULL, 150ULL, 200ULL, 300ULL, 400ULL,
        500ULL, 600ULL, 700ULL, 800ULL, 900ULL, 1000ULL}) {
    const std::uint64_t static_c =
        ((static_cast<std::uint64_t>(1.5 * static_cast<double>(j)) + 3) / 4) * 4;
    const auto c24 = iblt::lookup_params(j, 24).cells;
    const auto c240 = iblt::lookup_params(j, 240).cells;
    const auto c2400 = iblt::lookup_params(j, 2400).cells;
    table.add_row({std::to_string(j), std::to_string(static_c), std::to_string(c24),
                   std::to_string(c240), std::to_string(c2400),
                   sim::format_bytes(static_cast<double>(iblt::iblt_bytes(j, 240)))});
  }
  table.print(std::cout);

  std::cout << "\nHedge factor tau = cells/j at 1/240: ";
  for (const std::uint64_t j : {10ULL, 100ULL, 1000ULL}) {
    std::cout << "j=" << j << " -> " << sim::format_double(iblt::hedge_factor(j, 240), 2)
              << "  ";
  }
  std::cout << "\nExpected: tau decreases toward ~1.3-1.5 as j grows; small j pay a\n"
               "large discretization premium, matching the paper's Fig. 10.\n";
  return 0;
}
