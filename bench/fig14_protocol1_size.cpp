// Fig. 14: average Graphene Protocol 1 size vs Compact Blocks as the
// receiver's mempool grows (extra transactions as a multiple of block size),
// for blocks of 200, 2000 and 10000 transactions.
//
// Expected shape: Compact Blocks is flat at ~6 B/txn; Graphene starts far
// below it and grows only sublinearly with mempool size.
#include <iostream>

#include "baselines/compact_blocks.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/table.hpp"

int main() {
  using namespace graphene;
  const std::uint64_t base_trials = sim::trials_from_env(100);
  util::Rng rng(0xf16014);

  std::cout << "=== Fig. 14: Protocol 1 size vs Compact Blocks, growing mempool ===\n\n";

  for (const std::uint64_t n : sim::paper_block_sizes()) {
    const std::uint64_t trials = n >= 10000 ? std::max<std::uint64_t>(base_trials / 5, 3)
                                            : base_trials;
    const std::size_t cb = baselines::compact_block_encoding_bytes(n);
    sim::TablePrinter table({"extra mempool (x block)", "Graphene P1", "95% ci",
                             "Compact Blocks", "Graphene/CB"});
    for (const double mult : sim::mempool_multiples()) {
      sim::Accumulator bytes;
      for (std::uint64_t t = 0; t < trials; ++t) {
        chain::ScenarioSpec spec;
        spec.block_txns = n;
        spec.extra_txns = static_cast<std::uint64_t>(mult * static_cast<double>(n));
        const chain::Scenario s = chain::make_scenario(spec, rng);
        const sim::GrapheneRun run = sim::run_graphene_protocol1_only(s, rng.next());
        bytes.add(static_cast<double>(run.bloom_s_bytes + run.iblt_i_bytes));
      }
      table.add_row({sim::format_double(mult, 1), sim::format_bytes(bytes.mean()),
                     sim::format_bytes(bytes.ci95()),
                     sim::format_bytes(static_cast<double>(cb)),
                     sim::format_double(bytes.mean() / static_cast<double>(cb), 3)});
    }
    std::cout << "--- block size " << n << " txns (trials " << trials << ") ---\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected: Graphene/CB ratio well below 1 everywhere, improving with\n"
               "block size; Graphene grows sublinearly along each facet.\n";
  return 0;
}
