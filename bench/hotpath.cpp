// Data-plane hot-path timing: the receiver's mempool filter pass and the
// IBLT build/subtract/decode pipeline, at mempool scales m ∈ {10k, 100k, 1M}.
//
// Four Bloom variants per scale:
//   seed scalar  — a faithful replica of the pre-batch implementation
//                  (per-item probe_positions with hardware `%`, one query at
//                  a time), embedded here so the baseline can't drift;
//   lib scalar   — today's BloomFilter::contains in a loop;
//   batch        — contains_batch (tiled, prefetched, split-digest layout);
//   blocked      — contains_batch over the cache-line-blocked layout.
// And three IBLT builds: seed-replica scalar insert (per-probe seed mix and
// hardware `%`), insert_batch, and pooled insert_all, plus subtract and
// decode of a realistic difference.
//
// Round 2 adds two sections:
//   kernels — each SIMD kernel (bloom probe/set, IBLT cell add/sub, xor,
//             all_zero, bytes_equal) timed portable-vs-best-ISA over large
//             buffers via kernels_for(), reported as bytes/s + speedup;
//   wire    — copy (encode_frame) vs zero-copy (begin_frame + serialize_into
//             + end_frame) framing of a realistic GrapheneBlockMsg, with a
//             byte-identity cross-check.
//
// Every variant's results are cross-checked (hit counts per strategy, cell
// bytes across build paths, kernel outputs portable-vs-SIMD) and the process
// exits nonzero on any divergence, so CI smoke runs double as a parity gate.
// Writes BENCH_hotpath.json (overwritten each run); GRAPHENE_FAST=1 drops
// the 1M scale for smoke runs.
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "bloom/bloom_math.hpp"
#include "chain/transaction.hpp"
#include "graphene/messages.hpp"
#include "iblt/iblt.hpp"
#include "net/frame.hpp"
#include "obs/clock.hpp"
#include "obs/json.hpp"
#include "util/hash.hpp"
#include "util/random.hpp"
#include "util/simd/simd.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace graphene;

double ms_since(std::uint64_t start_ns) {
  return static_cast<double>(obs::monotonic_ns() - start_ns) / 1e6;
}

/// Best-of-N wall time for `fn` (returns a checksum to keep work observable).
template <typename Fn>
double best_ms(int reps, std::uint64_t* checksum, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const std::uint64_t start = obs::monotonic_ns();
    *checksum = fn();
    const double ms = ms_since(start);
    if (ms < best) best = ms;
  }
  return best;
}

// --- Seed-replica scalar Bloom filter -------------------------------------
// The exact pre-optimization inner loop: enhanced double hashing over the
// digest words with three hardware modulos per query plus one per extra
// probe, scattered single-bit loads, no tiling, no prefetch.
struct SeedBloom {
  std::uint64_t n_bits = 0;
  std::uint32_t k = 0;
  std::uint64_t seed = 0;
  std::vector<std::uint64_t> bits;

  SeedBloom(std::uint64_t items, double fpr, std::uint64_t s) : seed(s) {
    n_bits = bloom::optimal_bits(items, fpr);
    k = bloom::optimal_hash_count(n_bits, items == 0 ? 1 : items);
    bits.assign((n_bits + 63) / 64, 0);
  }

  // The seed's util::split_digest_words was an out-of-line byte loop;
  // keep that exact cost in the baseline.
  static std::array<std::uint64_t, 4> split_bytewise(util::ByteView digest) {
    std::array<std::uint64_t, 4> words{};
    const std::size_t n = digest.size() < 32 ? digest.size() : 32;
    for (std::size_t i = 0; i < n; ++i) {
      words[i / 8] |= static_cast<std::uint64_t>(digest[i]) << (8 * (i % 8));
    }
    return words;
  }

  void probe(util::ByteView id, std::uint64_t* out) const {
    const auto words = split_bytewise(id);
    std::uint64_t x = (words[0] ^ util::mix64(seed)) % n_bits;
    std::uint64_t y = (words[1] ^ words[2]) % n_bits;
    for (std::uint32_t i = 0; i < k; ++i) {
      out[i] = x;
      x = (x + y) % n_bits;
      y = (y + i + 1) % n_bits;
    }
  }

  void insert(util::ByteView id) {
    std::uint64_t pos[64];
    probe(id, pos);
    for (std::uint32_t i = 0; i < k; ++i) bits[pos[i] / 64] |= 1ULL << (pos[i] % 64);
  }

  [[nodiscard]] bool contains(util::ByteView id) const {
    std::uint64_t pos[64];
    probe(id, pos);
    for (std::uint32_t i = 0; i < k; ++i) {
      if ((bits[pos[i] / 64] & (1ULL << (pos[i] % 64))) == 0) return false;
    }
    return true;
  }
};

// --- Seed-replica scalar IBLT insert --------------------------------------
// Per-probe `mix64(seed + C·(i+1))` recomputation and a hardware `% stride`,
// exactly as the pre-batch Iblt::update computed positions.
struct SeedIblt {
  /// The seed's cell layout: count first, so padding holes inflate it to 24
  /// bytes — part of what the packed library layout buys back.
  struct Cell {
    std::int32_t count = 0;
    std::uint64_t key_sum = 0;
    std::uint32_t check_sum = 0;
  };

  std::uint32_t k;
  std::uint64_t seed;
  std::vector<Cell> cells;

  SeedIblt(std::uint32_t k_in, std::uint64_t cell_count, std::uint64_t s)
      : k(k_in), seed(s), cells(((cell_count + k_in - 1) / k_in) * k_in) {}

  void insert(std::uint64_t key) {
    const std::uint64_t stride = cells.size() / k;
    const auto check =
        static_cast<std::uint32_t>(util::mix64(key ^ 0xc0ffee3141592653ULL ^ seed));
    for (std::uint32_t i = 0; i < k; ++i) {
      const std::uint64_t h =
          util::mix64(key ^ util::mix64(seed + 0x9e3779b97f4a7c15ULL * (i + 1)));
      Cell& cell = cells[static_cast<std::uint64_t>(i) * stride + h % stride];
      cell.count = static_cast<std::int32_t>(static_cast<std::uint32_t>(cell.count) + 1u);
      cell.key_sum ^= key;
      cell.check_sum ^= check;
    }
  }
};

std::vector<chain::TxId> random_ids(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<chain::TxId> ids(count);
  for (chain::TxId& id : ids) {
    for (int w = 0; w < 4; ++w) {
      const std::uint64_t v = rng.next();
      for (int b = 0; b < 8; ++b) {
        id[static_cast<std::size_t>(8 * w + b)] = static_cast<std::uint8_t>(v >> (8 * b));
      }
    }
  }
  return ids;
}

bool g_parity_ok = true;

void check(bool ok, const char* what) {
  if (!ok) {
    std::printf("  PARITY DIVERGENCE: %s\n", what);
    g_parity_ok = false;
  }
}

struct ScaleResult {
  std::uint64_t m = 0, n = 0;
  double filter_seed_ms = 0, filter_lib_ms = 0, filter_batch_ms = 0;
  double filter_blocked_ms = 0, filter_pool_ms = 0;
  double iblt_seed_ms = 0, iblt_batch_ms = 0, iblt_pool_ms = 0;
  double subtract_ms = 0, subtract_pool_ms = 0, decode_ms = 0;
};

ScaleResult run_scale(std::uint64_t m, util::ThreadPool& pool, int reps) {
  ScaleResult res;
  res.m = m;
  res.n = m / 10;
  const std::uint64_t salt = 0xb10cf11e;
  const double fpr = 0.02;

  const std::vector<chain::TxId> block = random_ids(res.n, 0xb10c ^ m);
  const std::vector<chain::TxId> mempool = random_ids(m, 0x3e37 ^ m);
  std::vector<util::ByteView> views;
  views.reserve(mempool.size());
  for (const chain::TxId& id : mempool) views.emplace_back(id);

  // --- Mempool filter pass ------------------------------------------------
  SeedBloom seed_filter(res.n, fpr, salt);
  bloom::BloomFilter lib_filter(res.n, fpr, salt);
  bloom::BloomFilter blocked(res.n, fpr, salt, bloom::HashStrategy::kBlocked);
  {
    std::vector<util::ByteView> block_views;
    block_views.reserve(block.size());
    for (const chain::TxId& id : block) {
      seed_filter.insert(util::ByteView(id));
      block_views.emplace_back(id);
    }
    lib_filter.insert_batch(block_views.data(), block_views.size());
    blocked.insert_batch(block_views.data(), block_views.size());
  }
  check(seed_filter.n_bits == lib_filter.bit_count() &&
            seed_filter.k == lib_filter.hash_count(),
        "seed replica and library sized differently");

  std::uint64_t hits_seed = 0, hits_lib = 0, hits_batch = 0, hits_pool = 0,
                hits_blocked = 0;
  res.filter_seed_ms = best_ms(reps, &hits_seed, [&] {
    std::uint64_t hits = 0;
    for (const chain::TxId& id : mempool) hits += seed_filter.contains(util::ByteView(id)) ? 1 : 0;
    return hits;
  });
  res.filter_lib_ms = best_ms(reps, &hits_lib, [&] {
    std::uint64_t hits = 0;
    for (const chain::TxId& id : mempool) hits += lib_filter.contains(util::ByteView(id)) ? 1 : 0;
    return hits;
  });
  std::vector<std::uint8_t> out(m, 0);
  res.filter_batch_ms = best_ms(reps, &hits_batch, [&] {
    lib_filter.contains_batch(views.data(), views.size(), out.data());
    std::uint64_t hits = 0;
    for (const std::uint8_t b : out) hits += b;
    return hits;
  });
  res.filter_blocked_ms = best_ms(reps, &hits_blocked, [&] {
    blocked.contains_batch(views.data(), views.size(), out.data());
    std::uint64_t hits = 0;
    for (const std::uint8_t b : out) hits += b;
    return hits;
  });
  res.filter_pool_ms = best_ms(reps, &hits_pool, [&] {
    bloom::contains_all(blocked, views.data(), views.size(), out.data(), &pool);
    std::uint64_t hits = 0;
    for (const std::uint8_t b : out) hits += b;
    return hits;
  });
  check(hits_seed == hits_lib, "library scalar diverged from seed replica");
  check(hits_lib == hits_batch, "contains_batch diverged from scalar");
  check(hits_blocked == hits_pool, "pooled contains_all diverged from batch");

  // --- IBLT build / subtract / decode ------------------------------------
  // Tables are sized to the full mempool, not the block: this is the
  // difference-digest / strata-estimator / mempool-sync regime, where IBLTs
  // scale with m and construction is the memory-bound hot loop. (Protocol 1's
  // per-block I is tiny — a* cells — and never shows up in a profile.)
  const std::uint64_t items = m;
  const std::uint64_t cell_count = items / 2 + 8;
  std::vector<std::uint64_t> sids_a(items), sids_b(items);
  util::Rng sid_rng(0x51d ^ m);
  for (std::uint64_t i = 0; i < items; ++i) sids_a[i] = sid_rng.next();
  // b = a with the last 30 keys swapped out — a realistic small difference.
  sids_b = sids_a;
  const std::uint64_t delta = items < 30 ? items : 30;
  for (std::uint64_t i = 0; i < delta; ++i) sids_b[items - 1 - i] = sid_rng.next();

  std::uint64_t sink = 0;
  res.iblt_seed_ms = best_ms(reps, &sink, [&] {
    SeedIblt t(4, cell_count, salt);
    for (const std::uint64_t key : sids_a) t.insert(key);
    return static_cast<std::uint64_t>(t.cells[0].key_sum);
  });
  iblt::Iblt batch_table(iblt::IbltParams{4, cell_count}, salt);
  res.iblt_batch_ms = best_ms(reps, &sink, [&] {
    iblt::Iblt t(iblt::IbltParams{4, cell_count}, salt);
    t.insert_batch(sids_a.data(), sids_a.size());
    batch_table = t;
    return static_cast<std::uint64_t>(t.cells_for_test()[0].key_sum);
  });
  iblt::Iblt pool_table(iblt::IbltParams{4, cell_count}, salt);
  res.iblt_pool_ms = best_ms(reps, &sink, [&] {
    iblt::Iblt t(iblt::IbltParams{4, cell_count}, salt);
    t.insert_all(std::span<const std::uint64_t>(sids_a), &pool);
    pool_table = t;
    return static_cast<std::uint64_t>(t.cells_for_test()[0].key_sum);
  });
  {
    SeedIblt seed_table(4, cell_count, salt);
    for (const std::uint64_t key : sids_a) seed_table.insert(key);
    const auto& lib_cells = batch_table.cells_for_test();
    bool same = lib_cells.size() == seed_table.cells.size();
    for (std::size_t i = 0; same && i < lib_cells.size(); ++i) {
      same = lib_cells[i].count == seed_table.cells[i].count &&
             lib_cells[i].key_sum == seed_table.cells[i].key_sum &&
             lib_cells[i].check_sum == seed_table.cells[i].check_sum;
    }
    check(same, "insert_batch cells diverged from seed replica");
    check(batch_table.serialize() == pool_table.serialize(),
          "insert_all cells diverged from insert_batch");
  }

  iblt::Iblt other(iblt::IbltParams{4, cell_count}, salt);
  other.insert_batch(sids_b.data(), sids_b.size());
  iblt::Iblt diff(iblt::IbltParams{4, cell_count}, salt);
  res.subtract_ms = best_ms(reps, &sink, [&] {
    diff = batch_table.subtract(other);
    return static_cast<std::uint64_t>(diff.cells_for_test()[0].key_sum);
  });
  res.subtract_pool_ms = best_ms(reps, &sink, [&] {
    iblt::Iblt pooled = batch_table.subtract(other, &pool);
    check(pooled.serialize() == diff.serialize(), "pooled subtract diverged");
    return static_cast<std::uint64_t>(pooled.cells_for_test()[0].key_sum);
  });
  res.decode_ms = best_ms(reps, &sink, [&] {
    const iblt::DecodeResult dec = diff.decode();
    check(dec.success && dec.positives.size() == delta && dec.negatives.size() == delta,
          "difference failed to decode");
    return dec.peel_iterations;
  });
  return res;
}

// --- Per-kernel portable-vs-SIMD micro-benchmarks --------------------------

namespace simd = util::simd;

struct KernelResult {
  std::string kernel;   ///< e.g. "cells_add"
  std::string variant;  ///< "portable" or the dispatched ISA name
  double ms = 0;
  double bytes_per_sec = 0;
  double speedup = 1.0;  ///< this variant's throughput over portable
};

/// Times one kernel once per variant over the same inputs and cross-checks
/// the outputs; appends a KernelResult per variant (portable first).
template <typename Fn>
void bench_kernel(std::vector<KernelResult>& out, const char* name,
                  double bytes_per_pass, int reps, Fn&& run_variant) {
  const simd::Isa best = simd::detected_isa();
  double portable_ms = 0;
  for (const simd::Isa isa : {simd::Isa::kPortable, best}) {
    std::uint64_t sink = 0;
    KernelResult r;
    r.kernel = name;
    r.variant = isa == simd::Isa::kPortable ? "portable" : simd::isa_name(isa);
    r.ms = best_ms(reps, &sink, [&] { return run_variant(simd::kernels_for(isa)); });
    r.bytes_per_sec = bytes_per_pass / (r.ms / 1e3);
    if (isa == simd::Isa::kPortable) portable_ms = r.ms;
    r.speedup = portable_ms / r.ms;
    out.push_back(r);
    // No vector ISA on this host: the portable row stands alone.
    if (best == simd::Isa::kPortable) break;
  }
}

std::vector<KernelResult> run_kernel_benches(int reps) {
  std::vector<KernelResult> out;
  util::Rng rng(0x51d4be7c);

  // Blocked-Bloom block probe/set: 64k independent 512-bit blocks, k = 8.
  {
    const std::size_t blocks = 1 << 16;
    std::vector<std::uint64_t> table(blocks * 8);
    for (auto& w : table) w = rng.next();
    std::vector<std::uint32_t> xs(blocks), ys(blocks);
    for (std::size_t i = 0; i < blocks; ++i) {
      xs[i] = static_cast<std::uint32_t>(rng.below(512));
      ys[i] = static_cast<std::uint32_t>(rng.below(512));
    }
    const double bytes = static_cast<double>(blocks) * 64;
    std::uint64_t hits_portable = 0;
    bench_kernel(out, "bloom_test_block", bytes, reps, [&](const simd::Kernels& k) {
      std::uint64_t hits = 0;
      for (std::size_t i = 0; i < blocks; ++i) {
        hits += k.bloom_test_block(table.data() + i * 8, 8, xs[i], ys[i]) ? 1 : 0;
      }
      if (hits_portable == 0) hits_portable = hits;
      check(hits == hits_portable, "bloom_test_block hit count diverged");
      return hits;
    });
    std::vector<std::uint64_t> set_portable;
    bench_kernel(out, "bloom_set_block", bytes, reps, [&](const simd::Kernels& k) {
      std::vector<std::uint64_t> t(table);
      for (std::size_t i = 0; i < blocks; ++i) {
        k.bloom_set_block(t.data() + i * 8, 8, xs[i], ys[i]);
      }
      if (set_portable.empty()) set_portable = t;
      check(t == set_portable, "bloom_set_block bits diverged");
      return t[0];
    });
  }

  // IBLT cell fold: an 8k-cell table (128 KiB per operand — the cache-
  // resident regime real difference tables live in), folded 256 times per
  // pass so the measurement is compute-bound like Iblt::subtract's loop.
  {
    const std::size_t n_cells = 1 << 13;
    const int passes = 256;
    std::vector<std::uint8_t> dst(n_cells * 16), src(n_cells * 16);
    rng.fill(dst);
    rng.fill(src);
    const double bytes = static_cast<double>(n_cells) * 16 * 2 * passes;
    std::vector<std::uint8_t> add_portable, sub_portable;
    bench_kernel(out, "cells_add", bytes, reps, [&](const simd::Kernels& k) {
      std::vector<std::uint8_t> d(dst);
      for (int p = 0; p < passes; ++p) k.cells_add(d.data(), src.data(), n_cells);
      if (add_portable.empty()) add_portable = d;
      check(d == add_portable, "cells_add output diverged");
      return static_cast<std::uint64_t>(d[0]);
    });
    bench_kernel(out, "cells_sub", bytes, reps, [&](const simd::Kernels& k) {
      std::vector<std::uint8_t> d(dst);
      for (int p = 0; p < passes; ++p) k.cells_sub(d.data(), src.data(), n_cells);
      if (sub_portable.empty()) sub_portable = d;
      check(d == sub_portable, "cells_sub output diverged");
      return static_cast<std::uint64_t>(d[0]);
    });
  }

  // Raw byte kernels: 64 KiB buffers (L1/L2-resident, the coded-symbol and
  // frame-compare regime), many passes per measurement.
  {
    const std::size_t n = 64u << 10;
    const int passes = 1024;
    std::vector<std::uint8_t> a(n), b(n);
    rng.fill(a);
    rng.fill(b);
    std::vector<std::uint8_t> xor_portable;
    bench_kernel(out, "xor_bytes", static_cast<double>(n) * 2 * passes, reps,
                 [&](const simd::Kernels& k) {
                   std::vector<std::uint8_t> d(a);
                   for (int p = 0; p < passes; ++p) k.xor_bytes(d.data(), b.data(), n);
                   if (xor_portable.empty()) xor_portable = d;
                   check(d == xor_portable, "xor_bytes output diverged");
                   return static_cast<std::uint64_t>(d[0]);
                 });
    const std::vector<std::uint8_t> zeros(n, 0);
    bench_kernel(out, "all_zero", static_cast<double>(n) * passes, reps,
                 [&](const simd::Kernels& k) {
                   std::uint64_t z = 0;
                   for (int p = 0; p < passes; ++p) z += k.all_zero(zeros.data(), n) ? 1 : 0;
                   check(z == static_cast<std::uint64_t>(passes),
                         "all_zero rejected a zero buffer");
                   return z;
                 });
    bench_kernel(out, "bytes_equal", static_cast<double>(n) * 2 * passes, reps,
                 [&](const simd::Kernels& k) {
                   std::uint64_t eq = 0;
                   for (int p = 0; p < passes; ++p) eq += k.bytes_equal(a.data(), a.data(), n) ? 1 : 0;
                   check(eq == static_cast<std::uint64_t>(passes),
                         "bytes_equal rejected identical buffers");
                   return eq;
                 });
  }
  return out;
}

// --- Copy vs zero-copy wire serialization ----------------------------------

struct WireResult {
  std::size_t frame_bytes = 0;
  double copy_ms = 0;       ///< encode_frame: payload buffer + append
  double zero_copy_ms = 0;  ///< begin_frame + serialize_into + end_frame
  double speedup = 1.0;
};

WireResult run_wire_bench(int reps) {
  // A realistic Protocol-1 step-3 message at n = 2000: S sized for the
  // receiver's mempool pass plus a small I — the frame the relay daemon
  // serializes per peer per block.
  const std::size_t n = 2000;
  const std::vector<chain::TxId> ids = random_ids(n, 0xf4a3e);
  core::GrapheneBlockMsg msg;
  msg.n = n;
  msg.shortid_salt = 0xfeedface;
  msg.filter_s = bloom::BloomFilter(n, 0.005, 0xb10cf11e, bloom::HashStrategy::kBlocked);
  {
    std::vector<util::ByteView> views;
    views.reserve(ids.size());
    for (const chain::TxId& id : ids) views.emplace_back(id);
    msg.filter_s.insert_batch(views.data(), views.size());
  }
  msg.iblt_i = iblt::Iblt(iblt::IbltParams{4, 60}, 0xb10cf11e);
  for (const chain::TxId& id : ids) {
    msg.iblt_i.insert(util::hash64(util::ByteView(id), 0xb10cf11e));
  }

  WireResult res;
  const int frames_per_rep = 64;
  std::uint64_t sink = 0;
  util::Bytes copy_out;
  res.copy_ms = best_ms(reps, &sink, [&] {
    copy_out.clear();
    for (int i = 0; i < frames_per_rep; ++i) {
      const net::Message m{net::MessageType::kGrapheneBlock, msg.serialize()};
      const util::Bytes frame = net::encode_frame(m);
      copy_out.insert(copy_out.end(), frame.begin(), frame.end());
    }
    return static_cast<std::uint64_t>(copy_out.size());
  });
  util::Bytes zc_buf;
  util::Bytes zc_out;
  res.zero_copy_ms = best_ms(reps, &sink, [&] {
    zc_buf.clear();
    util::ByteWriter w(std::move(zc_buf));
    for (int i = 0; i < frames_per_rep; ++i) {
      const net::FramePatch p = net::begin_frame(w, net::MessageType::kGrapheneBlock);
      msg.serialize_into(w);
      net::end_frame(w, p);
    }
    zc_out = w.take();
    zc_buf = util::Bytes();
    return static_cast<std::uint64_t>(zc_out.size());
  });
  check(copy_out == zc_out, "zero-copy framing diverged from encode_frame");
  res.frame_bytes = copy_out.size() / frames_per_rep;
  res.speedup = res.copy_ms / res.zero_copy_ms;
  return res;
}

}  // namespace

int main() {
  const char* fast_env = std::getenv("GRAPHENE_FAST");
  const bool fast = fast_env != nullptr && *fast_env == '1';
  const int reps = fast ? 2 : 3;
  std::vector<std::uint64_t> scales = fast
                                          ? std::vector<std::uint64_t>{10'000, 50'000}
                                          : std::vector<std::uint64_t>{10'000, 100'000,
                                                                       1'000'000};
  const std::size_t workers = std::max(1u, std::thread::hardware_concurrency());
  util::ThreadPool pool(workers);

  std::printf("simd: detected %s, active %s\n",
              simd::isa_name(simd::detected_isa()),
              simd::isa_name(simd::active_isa()));
  const std::vector<KernelResult> kernels = run_kernel_benches(reps);
  for (const KernelResult& k : kernels) {
    std::printf("  kernel %-16s %-8s %9.3f ms  %8.2f MB/s  (%.2fx)\n",
                k.kernel.c_str(), k.variant.c_str(), k.ms,
                k.bytes_per_sec / 1e6, k.speedup);
  }
  const WireResult wire = run_wire_bench(reps);
  std::printf("  wire frame %zu B   copy %9.3f ms | zero-copy %9.3f ms  (%.2fx)\n",
              wire.frame_bytes, wire.copy_ms, wire.zero_copy_ms, wire.speedup);

  std::vector<ScaleResult> results;
  for (const std::uint64_t m : scales) {
    std::printf("m = %llu (n = %llu, %d reps, best-of)\n",
                static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(m / 10), reps);
    const ScaleResult r = run_scale(m, pool, reps);
    std::printf("  filter pass   seed %9.2f ms | scalar %9.2f | batch %9.2f | "
                "blocked %9.2f | +pool %9.2f  (%.2fx vs seed)\n",
                r.filter_seed_ms, r.filter_lib_ms, r.filter_batch_ms,
                r.filter_blocked_ms, r.filter_pool_ms,
                r.filter_seed_ms / r.filter_blocked_ms);
    std::printf("  iblt build    seed %9.2f ms | batch %9.2f | +pool %9.2f  (%.2fx vs seed)\n",
                r.iblt_seed_ms, r.iblt_batch_ms, r.iblt_pool_ms,
                r.iblt_seed_ms / r.iblt_batch_ms);
    std::printf("  iblt subtract      %9.2f ms | +pool %9.2f ; decode %9.3f ms\n",
                r.subtract_ms, r.subtract_pool_ms, r.decode_ms);
    results.push_back(r);
  }

  std::ofstream json("BENCH_hotpath.json");
  obs::json::Writer w;
  w.begin_object();
  w.key("workers");
  w.number(static_cast<std::uint64_t>(workers));
  w.key("reps");
  w.number(static_cast<std::uint64_t>(reps));
  w.key("fast");
  w.boolean(fast);
  w.key("simd_isa");
  w.string(simd::isa_name(simd::detected_isa()));
  w.key("kernels");
  w.begin_array();
  for (const KernelResult& k : kernels) {
    w.begin_object();
    w.key("kernel");
    w.string(k.kernel);
    w.key("variant");
    w.string(k.variant);
    w.key("ms");
    w.number(k.ms);
    w.key("bytes_per_sec");
    w.number(k.bytes_per_sec);
    w.key("speedup");
    w.number(k.speedup);
    w.end_object();
  }
  w.end_array();
  w.key("wire");
  w.begin_object();
  w.key("frame_bytes");
  w.number(static_cast<std::uint64_t>(wire.frame_bytes));
  w.key("copy_ms");
  w.number(wire.copy_ms);
  w.key("zero_copy_ms");
  w.number(wire.zero_copy_ms);
  w.key("speedup");
  w.number(wire.speedup);
  w.end_object();
  w.key("scales");
  w.begin_array();
  for (const ScaleResult& r : results) {
    w.begin_object();
    w.key("m");
    w.number(r.m);
    w.key("n");
    w.number(r.n);
    w.key("filter_seed_ms");
    w.number(r.filter_seed_ms);
    w.key("filter_scalar_ms");
    w.number(r.filter_lib_ms);
    w.key("filter_batch_ms");
    w.number(r.filter_batch_ms);
    w.key("filter_blocked_ms");
    w.number(r.filter_blocked_ms);
    w.key("filter_pool_ms");
    w.number(r.filter_pool_ms);
    w.key("filter_speedup_vs_seed");
    w.number(r.filter_seed_ms / r.filter_blocked_ms);
    w.key("iblt_seed_build_ms");
    w.number(r.iblt_seed_ms);
    w.key("iblt_batch_build_ms");
    w.number(r.iblt_batch_ms);
    w.key("iblt_pool_build_ms");
    w.number(r.iblt_pool_ms);
    w.key("iblt_build_speedup_vs_seed");
    w.number(r.iblt_seed_ms / r.iblt_batch_ms);
    w.key("subtract_ms");
    w.number(r.subtract_ms);
    w.key("subtract_pool_ms");
    w.number(r.subtract_pool_ms);
    w.key("decode_ms");
    w.number(r.decode_ms);
    w.end_object();
  }
  w.end_array();
  w.key("parity_ok");
  w.boolean(g_parity_ok);
  w.end_object();
  json << w.str() << '\n';
  std::printf("\nwrote BENCH_hotpath.json — parity %s\n",
              g_parity_ok ? "OK" : "DIVERGED");
  return g_parity_ok ? 0 : 1;
}
