// Fig. 17: Protocol 2 cost decomposed by message type (getdata, Bloom filter
// S, IBLT I, Bloom filter R, IBLT J) as the fraction of the block held by
// the receiver grows, against the Compact Blocks cost for the same repair.
//
// Transaction bytes are excluded on both sides, as in the paper.
#include <iostream>

#include "baselines/compact_blocks.hpp"
#include "sim/simulator.hpp"
#include "sim/table.hpp"

int main() {
  using namespace graphene;
  const std::uint64_t base_trials = sim::trials_from_env(50);
  const std::unique_ptr<std::ofstream> runs_jsonl = sim::open_runs_jsonl_from_env();
  std::cout << "=== Fig. 17: Protocol 2 cost by message type vs Compact Blocks ===\n\n";

  for (const std::uint64_t n : sim::paper_block_sizes()) {
    const std::uint64_t trials =
        n >= 10000 ? std::max<std::uint64_t>(base_trials / 5, 3) : base_trials;
    sim::TablePrinter table({"fraction held", "getdata", "BF S", "IBLT I", "BF R",
                             "IBLT J", "BF F", "total", "Compact Blocks"});
    for (const double frac : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0}) {
      chain::ScenarioSpec spec;
      spec.block_txns = n;
      spec.extra_txns = n;
      spec.block_fraction_in_mempool = frac;
      const sim::TrialStats stats = sim::run_trials(
          spec, trials, 0xf16017 + n + static_cast<std::uint64_t>(frac * 100), {},
          false, runs_jsonl.get());

      // Compact Blocks: base encoding + index request for missing txns.
      const auto missing = static_cast<std::uint64_t>((1.0 - frac) * static_cast<double>(n));
      const std::size_t cb = baselines::compact_block_encoding_bytes(n) +
                             (missing > 0
                                  ? 1 + missing * baselines::index_bytes(n)
                                  : 0);

      table.add_row({sim::format_double(frac, 1), sim::format_bytes(stats.mean_getdata),
                     sim::format_bytes(stats.mean_bloom_s),
                     sim::format_bytes(stats.mean_iblt_i),
                     sim::format_bytes(stats.mean_bloom_r),
                     sim::format_bytes(stats.mean_iblt_j),
                     sim::format_bytes(stats.mean_bloom_f),
                     sim::format_bytes(stats.mean_encoding_bytes),
                     sim::format_bytes(static_cast<double>(cb))});
    }
    std::cout << "--- block size " << n << " txns, mempool 2x (trials " << trials
              << ") ---\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected: Graphene total well below the Compact Blocks line at every\n"
               "fraction, with the gap widening as block size grows; IBLT J and BF R\n"
               "dominate at low fractions, BF S + IBLT I at fraction 1.\n";
  return 0;
}
