// Network-wide ablation (the §1 motivation, quantified): block propagation
// time and total bandwidth over a 30-peer random graph for each relay
// protocol, across block sizes.
#include <iostream>

#include "p2p/propagation.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"
#include "sim/table.hpp"

int main() {
  using namespace graphene;
  const std::uint64_t trials = sim::trials_from_env(5);
  util::Rng rng(0xbe7a);

  std::cout << "=== Network propagation: bandwidth & latency by protocol ===\n";
  std::cout << "30 peers, degree 8, 1 MB/s links, 50 ms latency, 99.5% mempool "
               "coverage; trials per point: "
            << trials << "\n\n";

  for (const std::uint64_t n : {200ULL, 1000ULL, 4000ULL}) {
    sim::TablePrinter table({"protocol", "total bytes", "t50 (s)", "t99 (s)",
                             "bytes vs full"});
    double full_bytes = 0.0;
    struct Row {
      p2p::RelayProtocol protocol;
      sim::Accumulator bytes, t50, t99;
    };
    std::vector<Row> rows;
    for (const p2p::RelayProtocol protocol :
         {p2p::RelayProtocol::kGraphene, p2p::RelayProtocol::kCompactBlocks,
          p2p::RelayProtocol::kXthin, p2p::RelayProtocol::kFullBlocks}) {
      rows.push_back({protocol, {}, {}, {}});
    }

    for (std::uint64_t t = 0; t < trials; ++t) {
      std::vector<chain::Transaction> txs;
      txs.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        txs.push_back(chain::make_random_transaction(rng));
      }
      const chain::Block block(chain::BlockHeader{}, std::move(txs));
      const p2p::Topology topo = p2p::Topology::random_regular(30, 8, rng);
      const std::uint64_t run_seed = rng.next();
      for (Row& row : rows) {
        p2p::PropagationConfig cfg;
        cfg.protocol = row.protocol;
        cfg.mempool_coverage = 0.995;
        util::Rng run_rng(run_seed);
        const p2p::PropagationResult r = p2p::propagate_block(block, topo, cfg, run_rng);
        row.bytes.add(static_cast<double>(r.total_bytes));
        row.t50.add(r.t50_s);
        row.t99.add(r.t99_s);
        if (row.protocol == p2p::RelayProtocol::kFullBlocks) {
          full_bytes = row.bytes.mean();
        }
      }
    }
    for (const Row& row : rows) {
      table.add_row({p2p::protocol_name(row.protocol),
                     sim::format_bytes(row.bytes.mean()),
                     sim::format_double(row.t50.mean(), 3),
                     sim::format_double(row.t99.mean(), 3),
                     sim::format_double(row.bytes.mean() / full_bytes, 4)});
    }
    std::cout << "--- block size " << n << " txns ---\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected: graphene << compact-blocks < xthin << full-blocks in\n"
               "bytes, and correspondingly faster t99 — the §1 scaling argument.\n";
  return 0;
}
