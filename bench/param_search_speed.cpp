// Algorithm 1 timing, two claims:
//
//  1. §4.1: the hypergraph representation makes the search an order of
//     magnitude faster than the same search over real, allocated IBLTs (the
//     paper reports 29 s vs 426 s at j = 100 with full statistical rigor;
//     here both sides use identical, reduced trial counts so the ratio is
//     the signal).
//
//  2. Parallel trial batches: search_params with a ThreadPool against the
//     serial path, on this machine's core count. Decisions are seeded by
//     batch index, so both paths must return identical parameters — the
//     bench cross-checks that while timing the speedup.
//
// Prints a table and writes BENCH_param_search.json (overwritten each run)
// for CI artifact upload. Honors GRAPHENE_FAST=1 and GRAPHENE_TRIALS.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <thread>

#include "iblt/hypergraph.hpp"
#include "iblt/iblt.hpp"
#include "iblt/param_search.hpp"
#include "obs/clock.hpp"
#include "obs/json.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace graphene;

constexpr std::uint64_t kJ = 100;
constexpr std::uint32_t kK = 4;
constexpr std::uint64_t kTrialsPerCandidate = 200;

double ms_since(std::uint64_t start_ns) {
  return static_cast<double>(obs::monotonic_ns() - start_ns) / 1e6;
}

/// Decode-rate estimate via hypergraph sampling (Algorithm 1's inner loop).
double rate_hypergraph(std::uint64_t c, util::Rng& rng) {
  std::uint64_t ok = 0;
  for (std::uint64_t t = 0; t < kTrialsPerCandidate; ++t) {
    ok += iblt::hypergraph_decodes(kJ, kK, c, rng) ? 1 : 0;
  }
  return static_cast<double>(ok) / static_cast<double>(kTrialsPerCandidate);
}

/// The same estimate with real IBLT allocation + insertion + peeling.
double rate_real_iblt(std::uint64_t c, util::Rng& rng) {
  std::uint64_t ok = 0;
  for (std::uint64_t t = 0; t < kTrialsPerCandidate; ++t) {
    iblt::Iblt table(iblt::IbltParams{kK, c}, rng.next());
    std::set<std::uint64_t> keys;
    while (keys.size() < kJ) keys.insert(rng.next());
    for (const std::uint64_t key : keys) table.insert(key);
    ok += table.decode().success ? 1 : 0;
  }
  return static_cast<double>(ok) / static_cast<double>(kTrialsPerCandidate);
}

template <typename RateFn>
std::uint64_t binary_search_c(RateFn&& rate, util::Rng& rng) {
  std::uint64_t lo = 1, hi = (kJ * 4) / kK;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (rate(mid * kK, rng) >= 0.95) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi * kK;
}

/// One timed search_params run; returns wall milliseconds.
double time_search(std::uint64_t j, double p, const iblt::SearchOptions& opts,
                   iblt::SearchResult* out) {
  util::Rng rng(42);
  const std::uint64_t start = obs::monotonic_ns();
  *out = iblt::search_params(j, p, rng, opts);
  return ms_since(start);
}

}  // namespace

int main() {
  const char* fast_env = std::getenv("GRAPHENE_FAST");
  const bool fast = fast_env != nullptr && *fast_env == '1';
  const char* trials_env = std::getenv("GRAPHENE_TRIALS");

  // --- Claim 1: hypergraph vs real-IBLT search cost -----------------------
  util::Rng rng_h(1);
  std::uint64_t start = obs::monotonic_ns();
  const std::uint64_t c_h =
      binary_search_c([](std::uint64_t c, util::Rng& r) { return rate_hypergraph(c, r); },
                      rng_h);
  const double hyper_ms = ms_since(start);

  util::Rng rng_r(2);
  start = obs::monotonic_ns();
  const std::uint64_t c_r =
      binary_search_c([](std::uint64_t c, util::Rng& r) { return rate_real_iblt(c, r); },
                      rng_r);
  const double real_ms = ms_since(start);

  std::printf("Algorithm 1 inner search at j=%llu (reduced trials):\n",
              static_cast<unsigned long long>(kJ));
  std::printf("  hypergraph  %8.1f ms  (c=%llu)\n", hyper_ms,
              static_cast<unsigned long long>(c_h));
  std::printf("  real IBLT   %8.1f ms  (c=%llu)\n", real_ms,
              static_cast<unsigned long long>(c_r));
  std::printf("  ratio       %8.1fx   (paper reports ~14.7x at full rigor)\n\n",
              real_ms / hyper_ms);

  // --- Claim 2: parallel vs serial search_params --------------------------
  iblt::SearchOptions opts;
  opts.max_trials = trials_env != nullptr
                        ? std::strtoull(trials_env, nullptr, 10)
                        : (fast ? 4000 : 20000);
  opts.batch = 64;
  const double p = 239.0 / 240.0;
  const std::uint64_t j = fast ? 200 : 1000;
  const std::size_t workers = std::max(1u, std::thread::hardware_concurrency());

  iblt::SearchResult serial;
  iblt::SearchResult parallel;
  const double serial_ms = time_search(j, p, opts, &serial);
  util::ThreadPool pool(workers);
  opts.pool = &pool;
  const double parallel_ms = time_search(j, p, opts, &parallel);
  const bool identical = serial.params.k == parallel.params.k &&
                         serial.params.cells == parallel.params.cells &&
                         serial.decode_rate == parallel.decode_rate &&
                         serial.certified == parallel.certified;

  std::printf("search_params at j=%llu, p=%.4f, max_trials=%llu:\n",
              static_cast<unsigned long long>(j), p,
              static_cast<unsigned long long>(opts.max_trials));
  std::printf("  serial      %8.1f ms  (k=%u, cells=%llu%s)\n", serial_ms, serial.params.k,
              static_cast<unsigned long long>(serial.params.cells),
              serial.certified ? "" : ", UNCERTIFIED");
  std::printf("  %zu workers  %8.1f ms  speedup %.2fx  results %s\n", workers, parallel_ms,
              serial_ms / parallel_ms, identical ? "IDENTICAL" : "DIVERGED");

  std::ofstream json("BENCH_param_search.json");
  obs::json::Writer w;
  w.begin_object();
  w.key("j");
  w.number(j);
  w.key("p");
  w.number(p);
  w.key("max_trials");
  w.number(opts.max_trials);
  w.key("hypergraph_ms");
  w.number(hyper_ms);
  w.key("real_iblt_ms");
  w.number(real_ms);
  w.key("hypergraph_speedup");
  w.number(real_ms / hyper_ms);
  w.key("serial_ms");
  w.number(serial_ms);
  w.key("parallel_ms");
  w.number(parallel_ms);
  w.key("workers");
  w.number(static_cast<std::uint64_t>(workers));
  w.key("parallel_speedup");
  w.number(serial_ms / parallel_ms);
  w.key("identical");
  w.boolean(identical);
  w.key("k");
  w.number(static_cast<std::uint64_t>(serial.params.k));
  w.key("cells");
  w.number(serial.params.cells);
  w.key("certified");
  w.boolean(serial.certified);
  w.end_object();
  json << w.str() << '\n';
  std::printf("\nwrote BENCH_param_search.json\n");

  return identical ? 0 : 1;
}
