// §4.1 timing claim: the hypergraph representation makes Algorithm 1 an
// order of magnitude faster than the same search over real, allocated IBLTs
// (the paper reports 29 s vs 426 s at j = 100 with full statistical rigor;
// here both sides use identical, reduced trial counts so the ratio is the
// signal).
#include <benchmark/benchmark.h>

#include <set>

#include "iblt/hypergraph.hpp"
#include "iblt/iblt.hpp"
#include "iblt/param_search.hpp"

namespace {

using namespace graphene;

constexpr std::uint64_t kJ = 100;
constexpr std::uint32_t kK = 4;
constexpr std::uint64_t kTrialsPerCandidate = 200;

/// Decode-rate estimate via hypergraph sampling (Algorithm 1's inner loop).
double rate_hypergraph(std::uint64_t c, util::Rng& rng) {
  std::uint64_t ok = 0;
  for (std::uint64_t t = 0; t < kTrialsPerCandidate; ++t) {
    ok += iblt::hypergraph_decodes(kJ, kK, c, rng) ? 1 : 0;
  }
  return static_cast<double>(ok) / static_cast<double>(kTrialsPerCandidate);
}

/// The same estimate with real IBLT allocation + insertion + peeling.
double rate_real_iblt(std::uint64_t c, util::Rng& rng) {
  std::uint64_t ok = 0;
  for (std::uint64_t t = 0; t < kTrialsPerCandidate; ++t) {
    iblt::Iblt table(iblt::IbltParams{kK, c}, rng.next());
    std::set<std::uint64_t> keys;
    while (keys.size() < kJ) keys.insert(rng.next());
    for (const std::uint64_t key : keys) table.insert(key);
    ok += table.decode().success ? 1 : 0;
  }
  return static_cast<double>(ok) / static_cast<double>(kTrialsPerCandidate);
}

template <typename RateFn>
std::uint64_t binary_search_c(RateFn&& rate, util::Rng& rng) {
  std::uint64_t lo = 1, hi = (kJ * 4) / kK;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (rate(mid * kK, rng) >= 0.95) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi * kK;
}

void BM_ParamSearch_Hypergraph(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        binary_search_c([](std::uint64_t c, util::Rng& r) { return rate_hypergraph(c, r); },
                        rng));
  }
}
BENCHMARK(BM_ParamSearch_Hypergraph)->Unit(benchmark::kMillisecond);

void BM_ParamSearch_RealIblt(benchmark::State& state) {
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        binary_search_c([](std::uint64_t c, util::Rng& r) { return rate_real_iblt(c, r); },
                        rng));
  }
}
BENCHMARK(BM_ParamSearch_RealIblt)->Unit(benchmark::kMillisecond);

/// Raw single-trial costs, for the per-sample ratio.
void BM_DecodeTrial_Hypergraph(benchmark::State& state) {
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(iblt::hypergraph_decodes(kJ, kK, 160, rng));
  }
}
BENCHMARK(BM_DecodeTrial_Hypergraph);

void BM_DecodeTrial_RealIblt(benchmark::State& state) {
  util::Rng rng(4);
  for (auto _ : state) {
    iblt::Iblt table(iblt::IbltParams{kK, 160}, rng.next());
    for (std::uint64_t i = 0; i < kJ; ++i) table.insert(rng.next());
    benchmark::DoNotOptimize(table.decode().success);
  }
}
BENCHMARK(BM_DecodeTrial_RealIblt);

}  // namespace
