// §5.3.2: Difference Digest (Eppstein et al.) — the IBLT-only alternative to
// Graphene Protocol 2 — costs several times more for the same scenarios.
#include <iostream>

#include "baselines/difference_digest.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/table.hpp"

int main() {
  using namespace graphene;
  const std::uint64_t trials = sim::trials_from_env(30);
  util::Rng rng(0xd1ffd16);

  std::cout << "=== §5.3.2: Difference Digest vs Graphene (Protocols 1+2) ===\n";
  std::cout << "trials per point: " << trials << "\n\n";

  for (const std::uint64_t n : {200ULL, 2000ULL}) {
    sim::TablePrinter table({"fraction held", "DD estimator", "DD IBLT", "DD total",
                             "Graphene enc", "DD/Graphene", "DD decode rate"});
    for (const double frac : {0.5, 0.8, 0.9, 0.95, 1.0}) {
      sim::Accumulator dd_est, dd_iblt, dd_total, graphene_bytes;
      std::uint64_t dd_ok = 0;
      for (std::uint64_t t = 0; t < trials; ++t) {
        chain::ScenarioSpec spec;
        spec.block_txns = n;
        spec.extra_txns = n;
        spec.block_fraction_in_mempool = frac;
        const chain::Scenario s = chain::make_scenario(spec, rng);

        baselines::DifferenceDigestConfig cfg;
        cfg.seed = rng.next();
        const baselines::DifferenceDigestResult dd =
            baselines::run_difference_digest(s.block, s.receiver_mempool, cfg);
        dd_est.add(static_cast<double>(dd.estimator_bytes));
        dd_iblt.add(static_cast<double>(dd.iblt_bytes));
        dd_total.add(static_cast<double>(dd.total_bytes()));
        dd_ok += dd.success ? 1 : 0;

        const sim::GrapheneRun run = sim::run_graphene(s, rng.next());
        graphene_bytes.add(static_cast<double>(run.encoding_bytes()));
      }
      table.add_row(
          {sim::format_double(frac, 2), sim::format_bytes(dd_est.mean()),
           sim::format_bytes(dd_iblt.mean()), sim::format_bytes(dd_total.mean()),
           sim::format_bytes(graphene_bytes.mean()),
           sim::format_double(dd_total.mean() / graphene_bytes.mean(), 2),
           sim::format_double(static_cast<double>(dd_ok) / static_cast<double>(trials),
                              2)});
    }
    std::cout << "--- block size " << n << " txns, mempool 2x ---\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected: DD/Graphene ratio of several x at every point (the paper\n"
               "calls the Difference Digest \"several times more expensive\").\n";
  return 0;
}
