// Fig. 16: decode failure rate of the full protocol (1 → 2) as the fraction
// of the block already at the receiver varies, with and without ping-pong
// decoding.
//
// Expected shape: both variants stay below the 1/240 bound; ping-pong cuts
// the residual failures by orders of magnitude (most points drop to zero at
// these trial counts).
#include <iostream>

#include "sim/simulator.hpp"
#include "sim/table.hpp"

int main() {
  using namespace graphene;
  const std::uint64_t base_trials = sim::trials_from_env(1000);
  const std::unique_ptr<std::ofstream> runs_jsonl = sim::open_runs_jsonl_from_env();
  std::cout << "=== Fig. 16: Protocol 2 decode failure, with/without ping-pong ===\n\n";

  core::ProtocolConfig with_pp;
  core::ProtocolConfig without_pp;
  without_pp.enable_pingpong = false;

  for (const std::uint64_t n : {200ULL, 2000ULL}) {
    const std::uint64_t trials =
        n >= 2000 ? std::max<std::uint64_t>(base_trials / 5, 50) : base_trials;
    sim::TablePrinter table({"block fraction held", "fail (no pingpong)",
                             "fail (pingpong)", "trials", "bound"});
    for (const double frac : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0}) {
      chain::ScenarioSpec spec;
      spec.block_txns = n;
      spec.extra_txns = n;
      spec.block_fraction_in_mempool = frac;
      const std::uint64_t seed =
          0xf16016 + n * 31 + static_cast<std::uint64_t>(frac * 100);
      const sim::TrialStats no_pp = sim::run_trials(spec, trials, seed, without_pp,
                                                    false, runs_jsonl.get());
      const sim::TrialStats pp =
          sim::run_trials(spec, trials, seed, with_pp, false, runs_jsonl.get());
      table.add_row(
          {sim::format_double(frac, 1),
           sim::format_prob(static_cast<double>(no_pp.decode_failures) /
                            static_cast<double>(no_pp.trials)),
           sim::format_prob(static_cast<double>(pp.decode_failures) /
                            static_cast<double>(pp.trials)),
           std::to_string(trials), sim::format_prob(1.0 / 240.0)});
    }
    std::cout << "--- block size " << n << " txns, mempool 2x ---\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected: failure <= 1/240 throughout; the pingpong column is\n"
               "consistently at or below the non-pingpong one (paper reports\n"
               "several-orders-of-magnitude improvement).\n";
  return 0;
}
