// Fig. 13: Graphene Protocol 1 on an Ethereum-like workload — historic
// blocks replayed against a constant 60,000-transaction mempool, compared
// with full blocks (left facet) and an idealized 8 B/txn Compact Blocks line
// (right facet).
//
// Substitution note (DESIGN.md §5): block sizes are drawn from a clamped
// log-normal matching the Jan-2019 mainnet distribution rather than replayed
// from chain data; the encoding depends only on (n, m = 60,000).
#include <iostream>
#include <map>

#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/table.hpp"

int main() {
  using namespace graphene;
  // Paper replayed 5,672 blocks; default lower for runtime (GRAPHENE_TRIALS
  // to raise).
  const std::uint64_t blocks = sim::trials_from_env(300);
  constexpr std::uint64_t kMempool = 60000;
  util::Rng rng(0xf16013);

  std::cout << "=== Fig. 13: Ethereum replay (synthetic sizes), mempool = 60,000 ===\n";
  std::cout << "blocks: " << blocks << " (paper: 5,672)\n\n";

  // Shared base pool of non-block transactions, reused across blocks.
  std::vector<chain::Transaction> base;
  base.reserve(kMempool);
  for (std::uint64_t i = 0; i < kMempool; ++i) {
    base.push_back(chain::make_random_transaction(rng));
  }

  // Bucket results by block size for the table. Ethereum has no canonical
  // transaction ordering, so the paper's Fig. 13 series includes the §6.2
  // ordering cost on top of Graphene — reported here as "P1+order".
  struct Bucket {
    sim::Accumulator graphene, graphene_ordered, full, cb8;
  };
  std::map<std::uint64_t, Bucket> buckets;
  std::uint64_t failures = 0;
  sim::Accumulator overall_graphene, overall_full;

  for (std::uint64_t bidx = 0; bidx < blocks; ++bidx) {
    const std::uint64_t n = chain::sample_eth_block_size(rng, 1000);

    chain::Scenario s;
    std::vector<chain::Transaction> block_txs;
    block_txs.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      block_txs.push_back(chain::make_random_transaction(rng));
      s.receiver_mempool.insert(block_txs.back());
    }
    for (std::uint64_t i = 0; i < kMempool - n; ++i) s.receiver_mempool.insert(base[i]);
    s.block = chain::Block(chain::BlockHeader{}, std::move(block_txs));
    s.n = n;
    s.m = s.receiver_mempool.size();

    const sim::GrapheneRun run = sim::run_graphene_protocol1_only(s, rng.next());
    failures += run.decoded ? 0 : 1;
    const auto graphene_bytes =
        static_cast<double>(run.bloom_s_bytes + run.iblt_i_bytes);
    const auto full_bytes = static_cast<double>(s.block.full_block_bytes());

    const std::uint64_t bucket = ((n + 124) / 125) * 125;  // 125-txn buckets
    Bucket& b = buckets[bucket];
    b.graphene.add(graphene_bytes);
    b.graphene_ordered.add(graphene_bytes +
                           static_cast<double>(chain::ordering_cost_bytes(n)));
    b.full.add(full_bytes);
    b.cb8.add(static_cast<double>(8 * n));
    overall_graphene.add(graphene_bytes);
    overall_full.add(full_bytes);
  }

  sim::TablePrinter table({"txns (bucket)", "blocks", "full block", "8 B/txn",
                           "Graphene P1", "P1+order", "vs full", "vs 8B/txn"});
  for (const auto& [bucket, b] : buckets) {
    if (b.graphene.count() < 3) continue;
    table.add_row(
        {std::to_string(bucket), std::to_string(b.graphene.count()),
         sim::format_bytes(b.full.mean()), sim::format_bytes(b.cb8.mean()),
         sim::format_bytes(b.graphene.mean()),
         sim::format_bytes(b.graphene_ordered.mean()),
         sim::format_double(b.graphene.mean() / b.full.mean(), 3),
         sim::format_double(b.graphene_ordered.mean() / b.cb8.mean(), 3)});
  }
  table.print(std::cout);

  std::cout << "\nDecode failures: " << failures << "/" << blocks
            << " (paper: 43/5672 ~ 0.0076)\n";
  std::cout << "Mean Graphene size " << sim::format_bytes(overall_graphene.mean())
            << " vs mean full block " << sim::format_bytes(overall_full.mean()) << "\n";
  std::cout << "Expected: Graphene ~1-2 orders below full blocks and well under the\n"
               "8 B/txn idealized Compact Blocks line at every size.\n";
  return 0;
}
