// §5.1 / Theorem 4: Graphene Protocol 1 versus an optimally-small Bloom
// filter alone (FPR 1/(144(m−n))), the Carter et al. approximate-membership
// lower bound at that FPR, and the exact-description information bound.
//
// Expected shape: the Graphene-vs-Bloom gap grows superlinearly in n
// (Ω(n log n) bits); for small n the Bloom-only filter can win, as §5.1
// concedes.
#include <iostream>

#include "baselines/bloom_only.hpp"
#include "graphene/params.hpp"
#include "sim/table.hpp"

int main() {
  using namespace graphene;
  std::cout << "=== Theorem 4: Graphene P1 vs optimal Bloom-filter-only relay ===\n";
  std::cout << "m = 2n throughout; sizes in bytes\n\n";

  sim::TablePrinter table({"n", "Bloom-only", "Graphene P1", "gap (B)", "gap/n (B)",
                           "Carter bound", "exact bound"});
  double prev_gap_per_n = 0.0;
  for (std::uint64_t n = 200; n <= 204800; n *= 2) {
    const std::uint64_t m = 2 * n;
    const auto bloom = static_cast<double>(baselines::bloom_only_bytes(n, m));
    const auto graphene =
        static_cast<double>(core::optimize_protocol1(n, m).total_bytes());
    const double gap = bloom - graphene;
    table.add_row({std::to_string(n), sim::format_bytes(bloom),
                   sim::format_bytes(graphene), sim::format_double(gap, 0),
                   sim::format_double(gap / static_cast<double>(n), 3),
                   sim::format_bytes(baselines::carter_lower_bound_bytes(
                       n, baselines::bloom_only_fpr(n, m))),
                   sim::format_bytes(baselines::exact_description_bound_bytes(n, m))});
    prev_gap_per_n = gap / static_cast<double>(n);
  }
  table.print(std::cout);
  std::cout << "\nExpected: gap/n grows with n (the Omega(n log n)-bit advantage);\n"
            << "final gap/n = " << sim::format_double(prev_gap_per_n, 3)
            << " B/txn. Graphene may lose below n ~ 1000 — §5.1's caveat.\n";
  return 0;
}
