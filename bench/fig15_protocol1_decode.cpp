// Fig. 15: decode failure rate of Graphene Protocol 1 (receiver holds the
// whole block) against the design bound 1 − β = 1/240, as mempool size
// grows.
//
// Expected shape: observed failure stays at or below the red 1/240 line for
// every block size and mempool multiple.
#include <iostream>

#include "sim/simulator.hpp"
#include "sim/table.hpp"

int main() {
  using namespace graphene;
  const std::uint64_t base_trials = sim::trials_from_env(2000);
  const std::unique_ptr<std::ofstream> runs_jsonl = sim::open_runs_jsonl_from_env();
  std::cout << "=== Fig. 15: Protocol 1 decode failure rate (bound 1/240 ~ "
            << sim::format_prob(1.0 / 240.0) << ") ===\n\n";

  for (const std::uint64_t n : sim::paper_block_sizes()) {
    const std::uint64_t trials = n >= 10000 ? std::max<std::uint64_t>(base_trials / 10, 50)
                                            : n >= 2000 ? base_trials / 2 : base_trials;
    sim::TablePrinter table({"extra mempool (x block)", "failures", "trials",
                             "failure rate", "bound"});
    for (const double mult : {0.0, 1.0, 2.0, 3.0, 4.0, 5.0}) {
      chain::ScenarioSpec spec;
      spec.block_txns = n;
      spec.extra_txns = static_cast<std::uint64_t>(mult * static_cast<double>(n));
      const sim::TrialStats stats =
          sim::run_trials(spec, trials, /*seed=*/0xf16015 + n + static_cast<std::uint64_t>(mult * 10),
                          {}, /*protocol1_only=*/true, runs_jsonl.get());
      table.add_row({sim::format_double(mult, 1), std::to_string(stats.decode_failures),
                     std::to_string(stats.trials),
                     sim::format_prob(static_cast<double>(stats.decode_failures) /
                                      static_cast<double>(stats.trials)),
                     sim::format_prob(1.0 / 240.0)});
    }
    std::cout << "--- block size " << n << " txns ---\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected: failure rate <= 1/240 at every point (paper Fig. 15 shows\n"
               "rates well below the bound).\n";
  return 0;
}
