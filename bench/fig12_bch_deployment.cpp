// Fig. 12: Protocol 1 encoding size vs XThin* as block size grows — the
// Bitcoin Cash deployment result, reproduced in simulation.
//
// Substitution note (DESIGN.md §5): the paper measured a live BCH peer; the
// encodings depend only on (n, m), so we draw the same block-size axis
// (0–5000 txns) against a mempool holding the full block plus one block's
// worth of extra transactions and report the mean over trials. Expected
// shape: XThin* grows at 8 B/txn; Graphene grows several times slower
// (~12% of XThin* at the large end).
#include <iostream>

#include "baselines/xthin.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/table.hpp"

int main() {
  using namespace graphene;
  const std::uint64_t trials = sim::trials_from_env(30);
  util::Rng rng(0xf16012);

  std::cout << "=== Fig. 12: BCH deployment (simulated): Graphene P1 vs XThin* ===\n";
  std::cout << "mempool = block + 1x extra; trials per point: " << trials << "\n\n";

  sim::TablePrinter table({"txns in block", "Graphene P1", "XThin*", "ratio",
                           "P1 decode failures"});
  std::uint64_t total_failures = 0, total_runs = 0;
  for (const std::uint64_t n : {50ULL, 100ULL, 250ULL, 500ULL, 1000ULL, 1500ULL, 2000ULL,
                                2500ULL, 3000ULL, 3500ULL, 4000ULL, 4500ULL, 5000ULL}) {
    sim::Accumulator graphene_bytes, xthin_bytes;
    std::uint64_t failures = 0;
    for (std::uint64_t t = 0; t < trials; ++t) {
      chain::ScenarioSpec spec;
      spec.block_txns = n;
      spec.extra_txns = n;  // deployment-typical: mempool ~ 2 blocks' worth
      const chain::Scenario s = chain::make_scenario(spec, rng);
      const sim::GrapheneRun run = sim::run_graphene_protocol1_only(s, rng.next());
      graphene_bytes.add(static_cast<double>(run.bloom_s_bytes + run.iblt_i_bytes));
      failures += run.decoded ? 0 : 1;

      const baselines::XthinResult xt = baselines::run_xthin(s.block, s.receiver_mempool);
      xthin_bytes.add(static_cast<double>(xt.encoding_bytes_xthin_star()));
    }
    total_failures += failures;
    total_runs += trials;
    table.add_row({std::to_string(n), sim::format_bytes(graphene_bytes.mean()),
                   sim::format_bytes(xthin_bytes.mean()),
                   sim::format_double(graphene_bytes.mean() / xthin_bytes.mean(), 3),
                   std::to_string(failures)});
  }
  table.print(std::cout);
  std::cout << "\nOverall Protocol 1 failure rate: " << total_failures << "/" << total_runs
            << " (paper deployment: 46/15647 ~ 0.003)\n";
  std::cout << "Expected: Graphene/XThin* ratio shrinks with block size (paper: ~12%\n"
               "of deployed costs for large blocks).\n";
  return 0;
}
