// Telemetry overhead check: the acceptance bar for the obs subsystem is
// that a null registry (instrumentation compiled in but not attached) costs
// no more than ~2% on the protocol hot paths — and the same bar holds for
// the flight recorder once a registry is attached and recording.
//
// Three measurements:
//   1. The Fig. 7 IBLT decode loop (iblt::measure_decode_rate) — the peel
//      loop carries unconditional iteration/residual accounting, so this is
//      where any regression versus the uninstrumented seed would show.
//   2. Full Graphene relays (sim::run_graphene) with a null registry versus
//      a live one, which bounds the cost of attaching telemetry at all.
//   3. The same relays with the flight recorder enabled (events, no wire
//      capture) versus attached-without-recorder — the gate. The baseline is
//      the attached registry, not the detached one, so the gate isolates the
//      recorder's incremental cost from the span/metric attach cost (which
//      measurement 2 reports on its own). Overhead above the bar fails the
//      bench (exit 1) so CI catches a recorder hot-path leak.
//
// Writes BENCH_obs_overhead.json (overwritten each run) for artifact upload.
// Timing is best-of-reps over interleaved batches to shrink scheduler noise;
// GRAPHENE_OBS_GATE_PCT overrides the 2% bar when a CI box is too noisy.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <utility>
#include <vector>

#include "iblt/param_search.hpp"
#include "iblt/param_table.hpp"
#include "obs/clock.hpp"
#include "obs/obs.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"
#include "sim/table.hpp"

namespace {

double seconds_since(std::uint64_t start_ns) {
  return static_cast<double>(graphene::obs::monotonic_ns() - start_ns) / 1e9;
}

}  // namespace

int main() {
  using namespace graphene;
  const std::uint64_t trials = sim::trials_from_env(3000);

  std::cout << "=== Telemetry overhead: instrumented build, registry detached vs attached ===\n";
  std::cout << "obs compiled " << (GRAPHENE_OBS_ENABLED ? "IN" : "OUT")
            << "; trials per point: " << trials << " (GRAPHENE_TRIALS to change)\n\n";

  double decode_loop_s = 0.0;

  // 1. IBLT peel hot loop (identical shape to bench_fig07_iblt_decode).
  {
    util::Rng rng(0xf16007);
    const std::uint64_t start = obs::monotonic_ns();
    double sink = 0.0;
    for (const std::uint64_t j : {20ULL, 100ULL, 500ULL}) {
      const iblt::IbltParams opt = iblt::lookup_params(j, 240);
      sink += iblt::measure_decode_rate(j, opt.k, opt.cells, trials, rng);
    }
    decode_loop_s = seconds_since(start);
    std::cout << "IBLT decode loop (j in {20,100,500}, 1/240 params): " << decode_loop_s
              << " s  [decode-rate checksum " << sink << "]\n";
    std::cout << "Compare against the seed build of bench_fig07_iblt_decode at the\n"
                 "same GRAPHENE_TRIALS; the delta must stay within noise (<= 2%).\n\n";
  }

  // 2./3. Full protocol relays: detached registry, attached registry, and
  // attached registry with the flight recorder on. The overhead under test
  // (~hundreds of ns per relay) is far below the timing noise of any single
  // run, so the estimator matters more than the sample count:
  //   * the unit of timing is one short *group* (a handful of relays of one
  //     scenario, ~5-10 ms) — short enough that stall-free windows are
  //     common, long enough that clock overhead vanishes;
  //   * each (config, scenario) cell keeps the MINIMUM group time across
  //     reps — the floor estimate a scheduler stall cannot inflate;
  //   * a config's score is the SUM of its per-scenario floors, averaging
  //     residual per-cell noise across independent cells;
  //   * group order rotates every rep so within-rep drift (frequency
  //     scaling, allocator warm-up) cannot land on one config every time.
  chain::ScenarioSpec spec;
  spec.block_txns = 500;
  spec.extra_txns = 1000;
  constexpr int kScenarios = 8;
  // The floor of 12 keeps groups ~10 ms even under GRAPHENE_FAST — any
  // shorter and per-group timing noise overwhelms the sub-1% effect.
  const std::uint64_t per_group =
      std::max<std::uint64_t>(trials / (30 * kScenarios), 12);
  constexpr int kReps = 10;

  util::Rng rng(0xab5);
  std::vector<chain::Scenario> scenarios;
  scenarios.reserve(kScenarios);
  for (int i = 0; i < kScenarios; ++i) scenarios.push_back(chain::make_scenario(spec, rng));

  const auto run_group = [&](const core::ProtocolConfig& cfg, int scenario) {
    const std::uint64_t start = obs::monotonic_ns();
    std::uint64_t decoded = 0;
    for (std::uint64_t i = 0; i < per_group; ++i) {
      const sim::GrapheneRun run =
          sim::run_graphene(scenarios[scenario], 0x9000 + i, cfg);
      decoded += run.decoded ? 1 : 0;
    }
    return std::pair<double, std::uint64_t>{seconds_since(start), decoded};
  };

  core::ProtocolConfig detached;  // obs == nullptr: the default-off path

  obs::Registry reg;
  reg.recorder().set_enabled(false);  // metrics + spans only
  core::ProtocolConfig attached;
  attached.obs = &reg;

  obs::Registry rec_reg;
  rec_reg.recorder().set_enabled(true);
  rec_reg.recorder().set_wire_capture(false);  // events on, wire capture off
  core::ProtocolConfig recording;
  recording.obs = &rec_reg;

  const core::ProtocolConfig* configs[3] = {&detached, &attached, &recording};
  double floors[3][kScenarios];
  std::uint64_t decoded_per[3] = {0, 0, 0};
  std::uint64_t spans_total = 0, events_total = 0;
  for (auto& row : floors) std::fill(row, row + kScenarios, 1e300);
  for (int r = 0; r < kReps; ++r) {
    for (int g = 0; g < kScenarios; ++g) {
      for (int i = 0; i < 3; ++i) {
        const int which = (r + i) % 3;
        const auto [s, ok] = run_group(*configs[which], g);
        floors[which][g] = std::min(floors[which][g], s);
        if (r == 0) decoded_per[which] += ok;  // one full pass is representative
      }
    }
    // Reset the span logs between reps so every group sees the same bounded
    // allocation profile — unbounded trace growth across reps is heap churn
    // that lands unevenly on the three configs.
    spans_total += reg.trace().size();
    events_total += rec_reg.recorder().total_recorded();
    reg.trace().clear();
    rec_reg.trace().clear();
    rec_reg.recorder().clear();
  }
  double cold = 0.0, hot = 0.0, rec = 0.0;
  for (int g = 0; g < kScenarios; ++g) {
    cold += floors[0][g];
    hot += floors[1][g];
    rec += floors[2][g];
  }
  const std::uint64_t relays = per_group * kScenarios;
  const std::uint64_t cold_ok = decoded_per[0];
  const std::uint64_t hot_ok = decoded_per[1];
  const std::uint64_t rec_ok = decoded_per[2];

  const double attach_pct = cold > 0.0 ? (hot - cold) / cold * 100.0 : 0.0;
  const double recorder_pct = hot > 0.0 ? (rec - hot) / hot * 100.0 : 0.0;
  std::cout << "Graphene relays (n=500, m=1500, " << relays << " runs, best of "
            << kReps << "):\n";
  std::cout << "  registry detached:  " << cold << " s (" << cold_ok << " decoded)\n";
  std::cout << "  registry attached:  " << hot << " s (" << hot_ok << " decoded)\n";
  std::cout << "  recorder enabled:   " << rec << " s (" << rec_ok << " decoded)\n";
  std::cout << "  attach overhead:    " << attach_pct << " % (vs detached)\n";
  std::cout << "  recorder overhead:  " << recorder_pct << " % (vs attached)\n";
  std::cout << "  spans recorded:     " << spans_total << "\n";
  std::cout << "  flight events:      " << events_total << "\n";

  double gate_pct = 2.0;
  if (const char* env = std::getenv("GRAPHENE_OBS_GATE_PCT");
      env != nullptr && *env != '\0') {
    gate_pct = std::atof(env);
  }
  const bool gate_pass = !GRAPHENE_OBS_ENABLED || recorder_pct <= gate_pct;

  {
    obs::json::Writer w;
    w.begin_object();
    w.key("bench");
    w.string("obs_overhead");
    w.key("obs_compiled_in");
    w.boolean(GRAPHENE_OBS_ENABLED != 0);
    w.key("trials");
    w.number(trials);
    w.key("relays");
    w.number(relays);
    w.key("reps");
    w.number(std::uint64_t{kReps});
    w.key("decode_loop_s");
    w.number(decode_loop_s);
    w.key("detached_s");
    w.number(cold);
    w.key("attached_s");
    w.number(hot);
    w.key("recorder_s");
    w.number(rec);
    w.key("attach_overhead_pct");
    w.number(attach_pct);
    w.key("recorder_overhead_pct");
    w.number(recorder_pct);
    w.key("gate_pct");
    w.number(gate_pct);
    w.key("gate_pass");
    w.boolean(gate_pass);
    w.key("flight_events");
    w.number(events_total);
    w.end_object();
    std::ofstream json("BENCH_obs_overhead.json");
    json << w.str() << '\n';
  }
  std::cout << "\nwrote BENCH_obs_overhead.json — recorder gate ("
            << gate_pct << "%) " << (gate_pass ? "PASS" : "FAIL") << "\n";
  return gate_pass ? 0 : 1;
}
