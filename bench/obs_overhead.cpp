// Telemetry overhead check: the acceptance bar for the obs subsystem is
// that a null registry (instrumentation compiled in but not attached) costs
// no more than ~2% on the protocol hot paths.
//
// Two measurements:
//   1. The Fig. 7 IBLT decode loop (iblt::measure_decode_rate) — the peel
//      loop carries unconditional iteration/residual accounting, so this is
//      where any regression versus the uninstrumented seed would show.
//   2. Full Graphene relays (sim::run_graphene) with a null registry versus
//      a live one, which bounds the cost of attaching telemetry at all.
#include <chrono>
#include <iostream>

#include "iblt/param_search.hpp"
#include "iblt/param_table.hpp"
#include "obs/obs.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"
#include "sim/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  using namespace graphene;
  const std::uint64_t trials = sim::trials_from_env(3000);

  std::cout << "=== Telemetry overhead: instrumented build, registry detached vs attached ===\n";
  std::cout << "obs compiled " << (GRAPHENE_OBS_ENABLED ? "IN" : "OUT")
            << "; trials per point: " << trials << " (GRAPHENE_TRIALS to change)\n\n";

  // 1. IBLT peel hot loop (identical shape to bench_fig07_iblt_decode).
  {
    util::Rng rng(0xf16007);
    const auto start = Clock::now();
    double sink = 0.0;
    for (const std::uint64_t j : {20ULL, 100ULL, 500ULL}) {
      const iblt::IbltParams opt = iblt::lookup_params(j, 240);
      sink += iblt::measure_decode_rate(j, opt.k, opt.cells, trials, rng);
    }
    const double elapsed = seconds_since(start);
    std::cout << "IBLT decode loop (j in {20,100,500}, 1/240 params): " << elapsed
              << " s  [decode-rate checksum " << sink << "]\n";
    std::cout << "Compare against the seed build of bench_fig07_iblt_decode at the\n"
                 "same GRAPHENE_TRIALS; the delta must stay within noise (<= 2%).\n\n";
  }

  // 2. Full protocol relays, detached vs attached registry.
  {
    chain::ScenarioSpec spec;
    spec.block_txns = 500;
    spec.extra_txns = 1000;
    const std::uint64_t relays = std::max<std::uint64_t>(trials / 10, 50);

    util::Rng rng(0xab5);
    std::vector<chain::Scenario> scenarios;
    scenarios.reserve(8);
    for (int i = 0; i < 8; ++i) scenarios.push_back(chain::make_scenario(spec, rng));

    const auto run_batch = [&](const core::ProtocolConfig& cfg) {
      const auto start = Clock::now();
      std::uint64_t decoded = 0;
      for (std::uint64_t i = 0; i < relays; ++i) {
        const sim::GrapheneRun run =
            sim::run_graphene(scenarios[i % scenarios.size()], 0x9000 + i, cfg);
        decoded += run.decoded ? 1 : 0;
      }
      return std::pair<double, std::uint64_t>{seconds_since(start), decoded};
    };

    core::ProtocolConfig detached;  // obs == nullptr: the default-off path
    const auto [cold, cold_ok] = run_batch(detached);

    obs::Registry reg;
    core::ProtocolConfig attached;
    attached.obs = &reg;
    const auto [hot, hot_ok] = run_batch(attached);

    const double overhead = cold > 0.0 ? (hot - cold) / cold * 100.0 : 0.0;
    std::cout << "Graphene relays (n=500, m=1500, " << relays << " runs):\n";
    std::cout << "  registry detached: " << cold << " s (" << cold_ok << " decoded)\n";
    std::cout << "  registry attached: " << hot << " s (" << hot_ok << " decoded)\n";
    std::cout << "  attach overhead:   " << overhead << " %\n";
    std::cout << "  spans recorded:    " << reg.trace().size() << "\n";
  }
  return 0;
}
