// Backend matrix: Graphene (Bloom+IBLT) vs Rateless IBLT across (x, y)
// divergence regimes, where x = items only the host has and y = items only
// the client has.
//
// Three numbers per cell and backend: mean wire bytes, mean coded symbols
// consumed (rateless only; 0 for Graphene), and mean one-way round trips.
// Graphene additionally reports how often it needed a repair round (the
// decode-failure Request/fetch path); the rateless backend must never use
// one — continuation chunks are flow control, not repairs — and this bench
// exits non-zero if any rateless cell fails or takes a repair round, so the
// CI smoke leg doubles as the tentpole's acceptance gate.
//
// Prints ASCII tables and writes BENCH_backends.json (overwritten each run)
// for CI artifact upload. Honors GRAPHENE_FAST=1 and GRAPHENE_TRIALS.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "reconcile/set_reconciler.hpp"
#include "sim/scenario.hpp"
#include "sim/table.hpp"
#include "util/random.hpp"

namespace {

using namespace graphene;

struct CellSpec {
  std::uint64_t shared;
  std::uint64_t x;  // host-only items
  std::uint64_t y;  // client-only items
};

struct CellResult {
  std::string backend;
  CellSpec spec{};
  std::uint64_t trials = 0;
  std::uint64_t failures = 0;
  std::uint64_t repair_rounds = 0;  // trials that used a request/fetch round
  double mean_bytes = 0;
  double mean_symbols = 0;
  double mean_round_trips = 0;
};

reconcile::ItemSet random_set(util::Rng& rng, std::uint64_t count) {
  reconcile::ItemSet out;
  out.reserve(count);
  while (out.size() < count) {
    reconcile::ItemDigest d;
    for (auto& byte : d) byte = static_cast<std::uint8_t>(rng.next());
    out.insert(d);
  }
  return out;
}

CellResult run_cell(core::ReconcileBackend backend, const char* backend_name,
                    const CellSpec& spec, std::uint64_t trials, util::Rng& rng) {
  CellResult cell;
  cell.backend = backend_name;
  cell.spec = spec;
  cell.trials = trials;

  double bytes_sum = 0, symbols_sum = 0, trips_sum = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    const reconcile::ItemSet shared_items = random_set(rng, spec.shared);
    reconcile::ItemSet host_items = shared_items;
    for (const reconcile::ItemDigest& d : random_set(rng, spec.x)) host_items.insert(d);
    reconcile::ItemSet client_items = shared_items;
    for (const reconcile::ItemDigest& d : random_set(rng, spec.y)) {
      client_items.insert(d);
    }

    core::ProtocolConfig cfg;
    cfg.reconcile_backend = backend;
    reconcile::Host host(host_items, rng.next(), cfg);
    reconcile::Client client(client_items, cfg);
    reconcile::Outcome out;
    const reconcile::SyncStats stats = reconcile::reconcile_one_way(host, client, out);

    const bool exact = stats.success && out.host_set == host_items;
    cell.failures += exact ? 0 : 1;
    cell.repair_rounds += (stats.used_request_round || stats.used_fetch_round) ? 1 : 0;
    bytes_sum += static_cast<double>(stats.total_bytes());
    symbols_sum += static_cast<double>(stats.symbols_consumed);
    trips_sum += static_cast<double>(stats.round_trips);
  }
  const auto n = static_cast<double>(trials);
  cell.mean_bytes = bytes_sum / n;
  cell.mean_symbols = symbols_sum / n;
  cell.mean_round_trips = trips_sum / n;
  return cell;
}

}  // namespace

int main() {
  const char* fast_env = std::getenv("GRAPHENE_FAST");
  const bool fast = fast_env != nullptr && *fast_env == '1';
  const std::uint64_t trials = sim::trials_from_env(20);  // FAST=1 → 2

  std::vector<std::uint64_t> shared_sizes = {200, 2000};
  if (!fast) shared_sizes.push_back(8000);
  const std::uint64_t divergences[][2] = {
      // {x, y}: host-only, client-only
      {1, 0}, {10, 0}, {10, 10}, {50, 5}, {100, 100}, {400, 40},
  };

  struct Backend {
    core::ReconcileBackend id;
    const char* name;
  };
  const Backend backends[] = {
      {core::ReconcileBackend::kGraphene, "graphene"},
      {core::ReconcileBackend::kRatelessIblt, "rateless_iblt"},
  };

  std::printf("=== Backend matrix: Graphene vs Rateless IBLT (trials %llu) ===\n\n",
              static_cast<unsigned long long>(trials));

  util::Rng rng(0xbac7e7d);
  std::vector<CellResult> results;
  bool rateless_gate_ok = true;

  for (const std::uint64_t shared : shared_sizes) {
    sim::TablePrinter table({"x (host-only)", "y (client-only)", "backend", "bytes",
                             "symbols", "round trips", "repairs", "failures"});
    for (const auto& d : divergences) {
      for (const Backend& b : backends) {
        const CellSpec spec{shared, d[0], d[1]};
        const CellResult cell = run_cell(b.id, b.name, spec, trials, rng);
        if (b.id == core::ReconcileBackend::kRatelessIblt &&
            (cell.failures != 0 || cell.repair_rounds != 0)) {
          rateless_gate_ok = false;
        }
        table.add_row({std::to_string(spec.x), std::to_string(spec.y), cell.backend,
                       sim::format_bytes(cell.mean_bytes),
                       sim::format_double(cell.mean_symbols, 1),
                       sim::format_double(cell.mean_round_trips, 2),
                       std::to_string(cell.repair_rounds),
                       std::to_string(cell.failures)});
        results.push_back(cell);
      }
    }
    std::printf("--- shared pool %llu items ---\n",
                static_cast<unsigned long long>(shared));
    table.print(std::cout);
    std::printf("\n");
  }

  std::ofstream json("BENCH_backends.json");
  obs::json::Writer w;
  w.begin_object();
  w.key("trials");
  w.number(trials);
  w.key("rateless_zero_repair_gate");
  w.boolean(rateless_gate_ok);
  w.key("cells");
  w.begin_array();
  for (const CellResult& cell : results) {
    w.begin_object();
    w.key("backend");
    w.string(cell.backend);
    w.key("shared");
    w.number(cell.spec.shared);
    w.key("x");
    w.number(cell.spec.x);
    w.key("y");
    w.number(cell.spec.y);
    w.key("bytes");
    w.number(cell.mean_bytes);
    w.key("symbols");
    w.number(cell.mean_symbols);
    w.key("round_trips");
    w.number(cell.mean_round_trips);
    w.key("repair_rounds");
    w.number(cell.repair_rounds);
    w.key("failures");
    w.number(cell.failures);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  json << w.str() << '\n';
  std::printf("wrote BENCH_backends.json\n");

  if (!rateless_gate_ok) {
    std::printf("GATE FAILED: rateless backend used a repair round or failed a cell\n");
    return 1;
  }
  std::printf("gate ok: rateless completed every cell with zero repair round trips\n");
  return 0;
}
