// §3.3.2 ablation: "Alternatives to Bloom filters — there are dozens of
// variations, including Cuckoo Filters and Golomb Code sets. Any alternative
// can be used if Eqs. 2, 3, 4, and 5 are updated appropriately."
//
// Compares serialized sizes of Bloom, Cuckoo, and GCS encodings across the
// FPR range Graphene actually uses, and recomputes Protocol 1's total with
// each alternative substituted for S. Expected shape: Bloom wins at the
// high FPRs Protocol 1 prefers; GCS/Cuckoo win at low FPR (where Compact
// Block Filters and exact-ish digests live).
#include <iostream>

#include "bloom/bloom_math.hpp"
#include "bloom/cuckoo_filter.hpp"
#include "bloom/golomb_set.hpp"
#include "graphene/bounds.hpp"
#include "graphene/params.hpp"
#include "iblt/param_table.hpp"
#include "sim/table.hpp"

int main() {
  using namespace graphene;
  std::cout << "=== §3.3.2 ablation: Bloom vs Cuckoo vs Golomb-coded set ===\n\n";

  const std::uint64_t n = 2000;
  sim::TablePrinter sizes({"FPR", "Bloom", "Cuckoo", "GCS", "winner"});
  for (const double fpr : {0.5, 0.1, 0.02, 0.005, 0.001, 0.0001, 0.00001}) {
    const std::size_t b = bloom::serialized_bytes(n, fpr);
    const std::size_t c = bloom::cuckoo_serialized_bytes(n, fpr);
    const std::size_t g = bloom::gcs_serialized_bytes(n, fpr);
    const char* winner = b <= c && b <= g ? "bloom" : (c <= g ? "cuckoo" : "gcs");
    sizes.add_row({sim::format_prob(fpr), sim::format_bytes(static_cast<double>(b)),
                   sim::format_bytes(static_cast<double>(c)),
                   sim::format_bytes(static_cast<double>(g)), winner});
  }
  std::cout << "--- filter size for n = " << n << " items ---\n";
  sizes.print(std::cout);

  // Protocol 1 totals with each filter standing in for S (Eq. 2 re-derived
  // per family; the IBLT term is unchanged).
  std::cout << "\n--- Protocol 1 total (filter + IBLT) with each family as S ---\n";
  sim::TablePrinter totals({"n", "m", "S=Bloom", "S=Cuckoo", "S=GCS"});
  const core::ProtocolConfig cfg;
  for (const std::uint64_t size : {200ULL, 2000ULL, 10000ULL}) {
    const std::uint64_t m = 2 * size;
    auto best_total = [&](auto size_fn) {
      std::size_t best = SIZE_MAX;
      for (std::uint64_t a = 1; a <= m - size; a = (a < 128 ? a + 1 : a + a / 8)) {
        const double fpr = static_cast<double>(a) / static_cast<double>(m - size);
        const std::uint64_t a_star = core::bound_a_star(static_cast<double>(a), cfg.beta);
        const std::size_t total =
            size_fn(size, fpr) + iblt::iblt_bytes(a_star, cfg.fail_denom);
        best = std::min(best, total);
      }
      return best;
    };
    totals.add_row(
        {std::to_string(size), std::to_string(m),
         sim::format_bytes(static_cast<double>(best_total(bloom::serialized_bytes))),
         sim::format_bytes(static_cast<double>(best_total(bloom::cuckoo_serialized_bytes))),
         sim::format_bytes(static_cast<double>(best_total(bloom::gcs_serialized_bytes)))});
  }
  totals.print(std::cout);
  std::cout << "\nObserved trade (matches the literature): GCS is a few % smaller than\n"
               "Bloom at most FPRs but costs O(n) per membership query — the receiver\n"
               "passes every mempool transaction through S, so Graphene deploys the\n"
               "O(k)-query Bloom filter. Cuckoo's 4-bit fingerprint floor and\n"
               "power-of-two table make it the largest in this regime; it wins only\n"
               "when deletion or very low FPR is required.\n";
  return 0;
}
