// Fig. 7: decode failure rates of statically-parameterized IBLTs (k = 4,
// τ = 1.5) versus Algorithm-1-optimal tables, for target failure rates
// 1/24, 1/240, 1/2400.
//
// The paper's point: static parameters either miss the target (under-
// allocated) or waste space (over-allocated); the optimal table tracks the
// magenta target line from below at every j.
#include <iostream>

#include "iblt/param_search.hpp"
#include "iblt/param_table.hpp"
#include "sim/scenario.hpp"
#include "sim/table.hpp"

int main() {
  using namespace graphene;
  const std::uint64_t trials = sim::trials_from_env(20000);
  util::Rng rng(0xf16007);

  std::cout << "=== Fig. 7: IBLT decode failure rate, static vs optimal parameters ===\n";
  std::cout << "trials per point: " << trials << " (GRAPHENE_TRIALS to change)\n\n";

  const std::uint64_t js[] = {5, 10, 20, 50, 100, 200, 500, 1000};

  for (const std::uint32_t denom : {24u, 240u, 2400u}) {
    const double target_failure = 1.0 / static_cast<double>(denom);
    sim::TablePrinter table(
        {"j", "static c (k=4,t=1.5)", "static fail", "optimal k", "optimal c",
         "optimal fail", "target"});
    for (const std::uint64_t j : js) {
      // Static: c = 1.5·j rounded up to a multiple of k = 4.
      const std::uint64_t static_c =
          ((static_cast<std::uint64_t>(1.5 * static_cast<double>(j)) + 3) / 4) * 4;
      const double static_fail =
          1.0 - iblt::measure_decode_rate(j, 4, static_c, trials, rng);

      const iblt::IbltParams opt = iblt::lookup_params(j, denom);
      const double opt_fail =
          1.0 - iblt::measure_decode_rate(j, opt.k, opt.cells, trials, rng);

      table.add_row({std::to_string(j), std::to_string(static_c),
                     sim::format_prob(static_fail), std::to_string(opt.k),
                     std::to_string(opt.cells), sim::format_prob(opt_fail),
                     sim::format_prob(target_failure)});
    }
    std::cout << "--- target failure rate 1/" << denom << " ---\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape: optimal fail <= target at every j; static fail\n"
               "crosses the target (too high for small j at strict targets,\n"
               "wastefully low elsewhere).\n";
  return 0;
}
