// Fig. 19: empirical validation of Theorem 2 — the fraction of Monte Carlo
// experiments where x* ≤ x, versus the design bound β = 239/240, across
// block sizes and block fractions held.
#include <iostream>

#include "graphene/bounds.hpp"
#include "graphene/params.hpp"
#include "sim/scenario.hpp"
#include "sim/table.hpp"
#include "util/random.hpp"

int main() {
  using namespace graphene;
  const std::uint64_t trials = sim::trials_from_env(10000);
  constexpr double kBeta = 239.0 / 240.0;
  util::Rng rng(0xf16019);

  std::cout << "=== Fig. 19: Theorem 2 validation (x* <= x at rate >= beta) ===\n";
  std::cout << "trials per point: " << trials << ", beta = " << kBeta << "\n\n";

  for (const std::uint64_t n : sim::paper_block_sizes()) {
    const std::uint64_t m = 2 * n;
    // Scale trials down for the larger facets (each trial costs O(m) draws).
    const std::uint64_t facet_trials =
        n >= 10000 ? std::max<std::uint64_t>(trials / 10, 100)
                   : n >= 2000 ? std::max<std::uint64_t>(trials / 2, 100) : trials;
    // Use the FPR Protocol 1 would actually choose for this (n, m).
    const double f_s = core::optimize_protocol1(n, m).fpr;
    sim::TablePrinter table({"fraction of block held", "Pr[x* <= x]", "beta"});
    for (const double frac : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
      const auto x_true = static_cast<std::uint64_t>(frac * static_cast<double>(n));
      std::uint64_t ok = 0;
      for (std::uint64_t t = 0; t < facet_trials; ++t) {
        const std::uint64_t y = rng.binomial(m - x_true, f_s);
        const std::uint64_t z = x_true + y;
        ok += core::bound_x_star(z, m, n, f_s, kBeta) <= x_true ? 1 : 0;
      }
      table.add_row({sim::format_double(frac, 1),
                     sim::format_double(static_cast<double>(ok) /
                                        static_cast<double>(facet_trials), 5),
                     sim::format_double(kBeta, 5)});
    }
    std::cout << "--- block size " << n << " txns, mempool " << m << " (f_S = "
              << sim::format_double(f_s, 5) << ") ---\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected: every row's Pr[x* <= x] >= beta (the bound is\n"
               "conservative; most rows sit at 1.0, as in the paper's Fig. 19).\n";
  return 0;
}
