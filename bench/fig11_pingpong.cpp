// Fig. 11: decode failure rate of a single optimally-small IBLT (target
// 1/240) versus ping-pong decoding with a second, smaller sibling IBLT
// holding the same items.
//
// Expected shape: with a sibling as large as the primary the joint failure
// rate approaches (1/240)^2; even much smaller siblings help at small j.
#include <iostream>
#include <set>

#include "iblt/param_table.hpp"
#include "iblt/pingpong.hpp"
#include "sim/scenario.hpp"
#include "sim/table.hpp"

int main() {
  using namespace graphene;
  const std::uint64_t trials = sim::trials_from_env(10000);
  util::Rng rng(0xf16011);

  std::cout << "=== Fig. 11: single-IBLT vs ping-pong decode failure (target 1/240) ===\n";
  std::cout << "trials per point: " << trials << "\n\n";

  for (const std::uint64_t j : {10ULL, 20ULL, 50ULL, 100ULL}) {
    const iblt::IbltParams primary = iblt::lookup_params(j, 240);
    sim::TablePrinter table({"sibling i", "sibling cells", "single fail", "pingpong fail"});
    for (const double frac : {0.2, 0.4, 0.6, 0.8, 1.0}) {
      const auto i = static_cast<std::uint64_t>(frac * static_cast<double>(j));
      if (i == 0) continue;
      const iblt::IbltParams sibling = iblt::lookup_params(i, 240);

      std::uint64_t single_failures = 0, joint_failures = 0;
      for (std::uint64_t t = 0; t < trials; ++t) {
        iblt::Iblt a(primary, rng.next());
        iblt::Iblt b(sibling, rng.next());
        std::set<std::uint64_t> keys;
        while (keys.size() < j) keys.insert(rng.next());
        for (const std::uint64_t k : keys) {
          a.insert(k);
          b.insert(k);
        }
        const bool single_ok = a.decode().success;
        single_failures += single_ok ? 0 : 1;
        if (!single_ok) {
          joint_failures += iblt::pingpong_decode(a, b).success ? 0 : 1;
        }
      }
      table.add_row({std::to_string(i), std::to_string(sibling.cells),
                     sim::format_prob(static_cast<double>(single_failures) /
                                      static_cast<double>(trials)),
                     sim::format_prob(static_cast<double>(joint_failures) /
                                      static_cast<double>(trials))});
    }
    std::cout << "--- " << j << " items in primary IBLT ("
              << primary.cells << " cells) ---\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected: pingpong fail << single fail, approaching (1/240)^2 when\n"
               "the sibling matches the primary's capacity.\n";
  return 0;
}
