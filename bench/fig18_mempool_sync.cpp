// Fig. 18: mempool synchronization with m = n — peers share a fraction of
// their pools (x-axis) and reconcile; Graphene's encoding bytes vs a Compact
// Blocks-based sync of the same pool.
//
// Expected shape: Graphene cheaper at every overlap, advantage growing with
// pool size; the m ≈ n reversal (filter F) makes low-overlap points viable.
#include <iostream>

#include "baselines/compact_blocks.hpp"
#include "graphene/mempool_sync.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"
#include "sim/table.hpp"

int main() {
  using namespace graphene;
  const std::uint64_t base_trials = sim::trials_from_env(20);
  util::Rng rng(0xf16018);

  std::cout << "=== Fig. 18: mempool sync (m = n) vs Compact Blocks ===\n\n";

  for (const std::uint64_t n : sim::paper_block_sizes()) {
    const std::uint64_t trials =
        n >= 10000 ? std::max<std::uint64_t>(base_trials / 5, 3) : base_trials;
    // Compact Blocks applied to the sync: announce the pool (6 B/txn) and
    // request the missing entries by index.
    sim::TablePrinter table({"fraction common", "Graphene sync", "Compact Blocks",
                             "ratio", "sync failures"});
    for (const double frac : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0}) {
      sim::Accumulator graphene_bytes;
      std::uint64_t failures = 0;
      const auto common = static_cast<std::uint64_t>(frac * static_cast<double>(n));
      for (std::uint64_t t = 0; t < trials; ++t) {
        chain::MempoolPair pair = chain::make_mempool_pair(n, common, rng);
        const core::MempoolSyncResult r = core::sync_mempools(pair.a, pair.b, rng.next());
        failures += r.success ? 0 : 1;
        graphene_bytes.add(static_cast<double>(r.graphene_bytes));
      }
      const std::size_t cb = baselines::compact_block_encoding_bytes(n) +
                             (n > common ? 1 + (n - common) * baselines::index_bytes(n)
                                         : 0);
      table.add_row({sim::format_double(frac, 1),
                     sim::format_bytes(graphene_bytes.mean()),
                     sim::format_bytes(static_cast<double>(cb)),
                     sim::format_double(graphene_bytes.mean() / static_cast<double>(cb), 3),
                     std::to_string(failures)});
    }
    std::cout << "--- pool size " << n << " txns each (trials " << trials << ") ---\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected: Graphene below Compact Blocks across overlaps, advantage\n"
               "increasing with pool size (paper Fig. 18).\n";
  return 0;
}
